package telemetry

import (
	"math"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers every collector type from many
// goroutines; run with -race, correctness is the exact final totals.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Collectors are looked up inside the loop on purpose:
			// lookup itself must be race-free and idempotent.
			for i := 0; i < perWorker; i++ {
				reg.Counter("c", "").Inc()
				reg.Gauge("g", "").Add(1)
				reg.Histogram("h", "", []float64{0.5}).Observe(float64(i%2) * 0.75)
				reg.CounterVec("cv", "", "k").With("a").Add(2)
				reg.GaugeVec("gv", "", "k").With("b").Add(1)
			}
		}(w)
	}
	wg.Wait()

	total := float64(workers * perWorker)
	if got := reg.Counter("c", "").Value(); got != total {
		t.Errorf("counter = %v, want %v", got, total)
	}
	if got := reg.Gauge("g", "").Value(); got != total {
		t.Errorf("gauge = %v, want %v", got, total)
	}
	if got := reg.CounterVec("cv", "", "k").With("a").Value(); got != 2*total {
		t.Errorf("counter vec = %v, want %v", got, 2*total)
	}
	snap := reg.Histogram("h", "", []float64{0.5}).Snapshot()
	if snap.Count != uint64(total) {
		t.Errorf("histogram count = %d, want %v", snap.Count, total)
	}
	// Half the observations are 0 (<= 0.5), half are 0.75 (> 0.5).
	if snap.Counts[0] != uint64(total)/2 || snap.Counts[1] != uint64(total)/2 {
		t.Errorf("histogram buckets = %v, want even split", snap.Counts)
	}
}

// TestHistogramBucketBoundaries pins the bucket semantics: a value
// lands in the first bucket whose upper bound is >= the value
// (Prometheus le semantics), and out-of-range values hit the +Inf
// overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{1, 2, 5})
	for _, v := range []float64{0, 1, 1.0000001, 2, 4.9, 5, 5.1, 100, math.Inf(1)} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	want := []uint64{
		2, // 0, 1       (le 1)
		2, // 1.0…1, 2   (le 2)
		2, // 4.9, 5     (le 5)
		3, // 5.1, 100, +Inf
	}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 9 {
		t.Errorf("count = %d, want 9", snap.Count)
	}
}

func TestHistogramUnsortedBucketsAreSorted(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{5, 1, 2})
	h.Observe(1.5)
	snap := h.Snapshot()
	if snap.Upper[0] != 1 || snap.Upper[1] != 2 || snap.Upper[2] != 5 {
		t.Fatalf("buckets not sorted: %v", snap.Upper)
	}
	if snap.Counts[1] != 1 {
		t.Errorf("1.5 should land in le=2, got %v", snap.Counts)
	}
}

func TestRegistryShapeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x", "")
}

func TestCounterRejectsNegative(t *testing.T) {
	var c Counter
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("zz", "").Set(1)
	reg.Counter("aa", "").Inc()
	v := reg.GaugeVec("mm", "", "cluster")
	v.With("2").Set(2)
	v.With("0").Set(0)
	v.With("1").Set(1)
	var names []string
	for _, s := range reg.Snapshot() {
		names = append(names, s.Name+"/"+s.LabelValue)
	}
	want := []string{"aa/", "mm/0", "mm/1", "mm/2", "zz/"}
	if len(names) != len(want) {
		t.Fatalf("snapshot = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", names, want)
		}
	}
}
