package telemetry

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Statsd flushes registry snapshots in the statsd line protocol
// (`<bucket>:<value>|<type>`, one metric per line — the same framing
// yastatsd parses). Counters are emitted as deltas since the previous
// flush (statsd counters accumulate server-side), gauges as absolute
// `|g` values, histograms as `.sum`/`.count` counter deltas plus a
// `.mean|ms` timing for the flush window.
type Statsd struct {
	prefix string

	// dropped counts flushes whose UDP write failed (the datagrams are
	// gone — statsd is fire-and-forget). Exposed via Dropped and as the
	// haccs_statsd_dropped_flushes_total self-metric so silent loss is
	// visible on the next successful flush.
	dropped atomic.Uint64

	mu   sync.Mutex
	conn io.WriteCloser
	// last remembers the previous flush's counter readings so deltas
	// can be computed; keyed by the rendered bucket name.
	last map[string]float64
}

// NewStatsd dials a UDP statsd endpoint. prefix (may be empty) is
// prepended to every bucket name with a trailing dot.
func NewStatsd(addr, prefix string) (*Statsd, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: statsd dial %s: %w", addr, err)
	}
	return NewStatsdConn(conn, prefix), nil
}

// NewStatsdConn wraps an already-connected destination (any
// WriteCloser; tests inject failing writers here).
func NewStatsdConn(conn io.WriteCloser, prefix string) *Statsd {
	return &Statsd{prefix: prefix, conn: conn, last: map[string]float64{}}
}

// Dropped returns how many flushes have been lost to write errors.
func (s *Statsd) Dropped() uint64 { return s.dropped.Load() }

// NewStatsdWriter returns an emitter that formats to an arbitrary
// writer instead of the network — the testable core of the sink.
func NewStatsdWriter(prefix string) *Statsd {
	return &Statsd{prefix: prefix, last: map[string]float64{}}
}

// bucketName joins prefix, metric name and label value with dots,
// sanitizing the statsd reserved characters.
func (s *Statsd) bucketName(sample Sample) string {
	name := sample.Name
	if sample.LabelValue != "" {
		name += "." + sample.LabelValue
	}
	if s.prefix != "" {
		name = s.prefix + "." + name
	}
	r := strings.NewReplacer(":", "_", "|", "_", "@", "_", " ", "_")
	return r.Replace(name)
}

// EmitTo renders the registry's current state as statsd lines into w.
// Counter deltas are tracked per-Statsd, so one emitter should own one
// destination.
func (s *Statsd) EmitTo(w io.Writer, reg *Registry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sample := range reg.Snapshot() {
		bucket := s.bucketName(sample)
		switch sample.Type {
		case "counter":
			delta := sample.Value - s.last[bucket]
			s.last[bucket] = sample.Value
			if delta == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s:%v|c\n", bucket, delta); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s:%v|g\n", bucket, sample.Value); err != nil {
				return err
			}
		case "histogram":
			h := sample.Hist
			sumB, cntB := bucket+".sum", bucket+".count"
			dSum := h.Sum - s.last[sumB]
			dCnt := float64(h.Count) - s.last[cntB]
			s.last[sumB], s.last[cntB] = h.Sum, float64(h.Count)
			if dCnt == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s:%v|c\n%s:%v|c\n", sumB, dSum, cntB, dCnt); err != nil {
				return err
			}
			// Statsd timers are in milliseconds; the registry records
			// seconds.
			if _, err := fmt.Fprintf(w, "%s.mean:%v|ms\n", bucket, dSum/dCnt*1000); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush sends one snapshot over the dialled connection. A failed write
// is counted in the dropped-flush self-metric (registered into reg, so
// the loss surfaces in the next successful flush and on /metrics)
// rather than silently discarded by the periodic Start loop.
func (s *Statsd) Flush(reg *Registry) error {
	var sb strings.Builder
	if err := s.EmitTo(&sb, reg); err != nil {
		return err
	}
	if sb.Len() == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return fmt.Errorf("telemetry: statsd emitter has no connection")
	}
	if _, err := io.WriteString(s.conn, sb.String()); err != nil {
		s.dropped.Add(1)
		if reg != nil {
			reg.Counter("haccs_statsd_dropped_flushes_total",
				"Statsd flushes lost to UDP write errors.").Inc()
		}
		return fmt.Errorf("telemetry: statsd flush: %w", err)
	}
	return nil
}

// Start flushes the registry every interval until the returned stop
// function is called (which performs one final flush and closes the
// connection).
func (s *Statsd) Start(reg *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = s.Flush(reg)
			case <-done:
				_ = s.Flush(reg)
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			s.mu.Lock()
			if s.conn != nil {
				s.conn.Close()
				s.conn = nil
			}
			s.mu.Unlock()
		})
	}
}
