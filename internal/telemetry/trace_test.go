package telemetry

import (
	"bytes"
	"reflect"
	"testing"
)

// sampleEvents exercises every constructor once.
func sampleEvents() []Event {
	return []Event{
		RoundStart(0),
		Unavailable(0, []int{3, 7}),
		ClusterSampled(0, 2, 0.4, 0.6, 1.9, 0.25),
		ClientPicked(0, 2, 11, 42.5, "fastest"),
		Selection(0, []int{11, 4}),
		ClientTrained(0, 11, 1.7, 120, 0.004, 42.5),
		Aggregated(0, []int{11, 4}, 55.5, 55.5),
		Evaluated(0, 0.31, 2.1, 55.5),
		Reclustered(-1, 6, 0.002),
		NetRound(0, []int{11, 4}, 0.01),
		ShardReport(1, 2, []int{11, 4}, 240, 0.01, 1, 55.5),
		ShardMerge(1, 4, 960, 0.002, 60),
		ShardFailed(2, 3, []int{5, 9}),
	}
}

// TestJSONLRoundTrip writes the full event vocabulary through the
// JSONL sink and decodes it back unchanged.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	events := sampleEvents()
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

func TestMemorySinkFilter(t *testing.T) {
	var m MemorySink
	for _, e := range sampleEvents() {
		m.Emit(e)
	}
	if m.Len() != len(sampleEvents()) {
		t.Fatalf("len = %d, want %d", m.Len(), len(sampleEvents()))
	}
	picks := m.Filter(KindClientPicked)
	if len(picks) != 1 || picks[0].Client != 11 || picks[0].Cluster != 2 {
		t.Errorf("filter = %+v", picks)
	}
}

func TestRingSinkTail(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 10; i++ {
		r.Emit(RoundStart(i))
	}
	if r.Total() != 10 {
		t.Errorf("total = %d, want 10", r.Total())
	}
	tail := r.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("tail len = %d, want 4", len(tail))
	}
	for i, e := range tail {
		if e.Round != 6+i {
			t.Errorf("tail[%d].Round = %d, want %d", i, e.Round, 6+i)
		}
	}
	two := r.Tail(2)
	if len(two) != 2 || two[0].Round != 8 || two[1].Round != 9 {
		t.Errorf("tail(2) = %+v", two)
	}
}

func TestCombine(t *testing.T) {
	if Combine() != nil || Combine(nil, nil) != nil {
		t.Error("Combine of nothing should be nil")
	}
	var m MemorySink
	if got := Combine(nil, &m); got != &m {
		t.Error("Combine of one sink should return it unwrapped")
	}
	var m2 MemorySink
	multi := Combine(&m, nil, &m2)
	multi.Emit(RoundStart(1))
	if m.Len() != 1 || m2.Len() != 1 {
		t.Error("MultiTracer did not fan out")
	}
}
