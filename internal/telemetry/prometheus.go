package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): # HELP / # TYPE headers,
// cumulative histogram buckets with the implicit +Inf bound, _sum and
// _count series. Families appear in name order, children in label
// order, so output is deterministic and diffable (the golden test
// relies on this).
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	var lastName string
	for _, s := range samples {
		if s.Name != lastName {
			lastName = s.Name
			// HELP/TYPE use the family name; histogram children add
			// the _bucket/_sum/_count suffixes below.
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", s.Name, escapeHelp(r.helpFor(s.Name)), s.Name, s.Type); err != nil {
				return err
			}
		}
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

// helpFor fetches a family's help string.
func (r *Registry) helpFor(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f.help
	}
	return ""
}

// labelSuffix renders `{key="value"}` (with an optional extra pair —
// le for histogram buckets, quantile for the derived summary lines),
// or "" when the sample is unlabelled. Info-style samples render their
// fixed pair set in registration order.
func labelSuffix(s Sample, extraKey, extraVal string) string {
	var pairs []string
	if s.LabelKey != "" {
		pairs = append(pairs, s.LabelKey+`="`+escapeLabel(s.LabelValue)+`"`)
	}
	for _, p := range s.Pairs {
		pairs = append(pairs, p[0]+`="`+escapeLabel(p[1])+`"`)
	}
	if extraKey != "" {
		pairs = append(pairs, extraKey+`="`+escapeLabel(extraVal)+`"`)
	}
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// exportQuantiles are the derived quantiles rendered for every
// histogram family so latency percentiles are scrapeable without
// bucket math on the Prometheus side.
var exportQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.9", 0.9},
	{"0.99", 0.99},
}

// escapeLabel applies the exposition-format label-value escaping
// rules: backslash, double quote and newline, in that order (the text
// format's full escape set — a raw quote would end the value early and
// corrupt every later sample on the scrape).
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp applies the HELP-line escaping rules (backslash and
// newline only; quotes are legal in help text).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatValue renders a float the way Prometheus expects (no
// exponent-free mangling needed; strconv 'g' round-trips).
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSample(w io.Writer, s Sample) error {
	if s.Hist == nil {
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelSuffix(s, "", ""), formatValue(s.Value))
		return err
	}
	cum := uint64(0)
	for i, upper := range s.Hist.Upper {
		cum += s.Hist.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labelSuffix(s, "le", formatValue(upper)), cum); err != nil {
			return err
		}
	}
	cum += s.Hist.Counts[len(s.Hist.Upper)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labelSuffix(s, "le", "+Inf"), cum); err != nil {
		return err
	}
	for _, eq := range exportQuantiles {
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelSuffix(s, "quantile", eq.label), formatValue(s.Hist.Quantile(eq.q))); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labelSuffix(s, "", ""), formatValue(s.Hist.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelSuffix(s, "", ""), s.Hist.Count)
	return err
}
