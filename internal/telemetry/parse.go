package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the Prometheus text exposition format:
// ParseExposition is the inverse of Registry.WritePrometheus, and
// LintExposition checks an exposition against the format's contract
// (HELP/TYPE lines, valid names, histogram completeness). The scale
// harness (internal/loadgen) scrapes /metrics and parses it with this
// code, so every number in a committed scale-results file went through
// the same pipeline an external Prometheus server would use — and the
// conformance test in this package lints every metric the repo
// registers through the same checker.

// ParsedSample is one time series scraped off an exposition: the full
// series name (including any _bucket/_sum/_count suffix), its decoded
// label set, and the value.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily groups the samples of one metric family with its
// HELP/TYPE metadata.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// Exposition is a parsed /metrics scrape.
type Exposition struct {
	// Families in exposition order, keyed additionally by name.
	Families []*ParsedFamily
	byName   map[string]*ParsedFamily
}

// Family returns the named family, or nil when the scrape did not
// carry it.
func (e *Exposition) Family(name string) *ParsedFamily {
	if e == nil {
		return nil
	}
	return e.byName[name]
}

// Value returns the value of the series with the exact name and label
// set (labels in any order; pass nothing for an unlabelled series).
// The second return reports whether the series was present.
func (e *Exposition) Value(series string, labels ...[2]string) (float64, bool) {
	fam := e.Family(familyOf(e, series))
	if fam == nil {
		return 0, false
	}
	for _, s := range fam.Samples {
		if s.Name != series || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for _, l := range labels {
			if s.Labels[l[0]] != l[1] {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// familyOf maps a series name back to its declaring family: itself,
// or the histogram base name when the series carries a histogram
// suffix and the base was declared.
func familyOf(e *Exposition, series string) string {
	if e.byName[series] != nil {
		return series
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(series, suffix)
		if ok && e.byName[base] != nil {
			return base
		}
	}
	return series
}

// ParseExposition decodes a Prometheus text-format scrape. It fails on
// syntax errors (malformed lines, unterminated label quotes, bad
// floats) but does not enforce semantic rules — that is
// LintExposition's job.
func ParseExposition(data []byte) (*Exposition, error) {
	e := &Exposition{byName: map[string]*ParsedFamily{}}
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(e, line); err != nil {
				return nil, fmt.Errorf("telemetry: exposition line %d: %w", ln+1, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: exposition line %d: %w", ln+1, err)
		}
		fam := e.byName[familyOf(e, s.Name)]
		if fam == nil {
			// A sample without metadata still parses; the linter
			// flags the missing HELP/TYPE.
			fam = &ParsedFamily{Name: s.Name}
			e.Families = append(e.Families, fam)
			e.byName[s.Name] = fam
		}
		fam.Samples = append(fam.Samples, s)
	}
	return e, nil
}

// parseComment folds a "# HELP name text" / "# TYPE name kind" line
// into the family table. Other comments are ignored per the format.
func parseComment(e *Exposition, line string) error {
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return nil // bare "#..." comment
	}
	var kind string
	switch {
	case strings.HasPrefix(rest, "HELP "):
		kind, rest = "HELP", rest[len("HELP "):]
	case strings.HasPrefix(rest, "TYPE "):
		kind, rest = "TYPE", rest[len("TYPE "):]
	default:
		return nil
	}
	name, text, _ := strings.Cut(rest, " ")
	if name == "" {
		return fmt.Errorf("%s line without a metric name", kind)
	}
	fam := e.byName[name]
	if fam == nil {
		fam = &ParsedFamily{Name: name}
		e.Families = append(e.Families, fam)
		e.byName[name] = fam
	}
	if kind == "HELP" {
		fam.Help = unescapeHelp(text)
	} else {
		fam.Type = text
	}
	return nil
}

// parseSample decodes one `name{key="value",...} number` line.
func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("sample line without a value: %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				return s, fmt.Errorf("unterminated label set: %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return s, fmt.Errorf("malformed label pair: %q", line)
			}
			key := rest[:eq]
			val, n, err := unquoteLabel(rest[eq+1:])
			if err != nil {
				return s, fmt.Errorf("%v: %q", err, line)
			}
			s.Labels[key] = val
			rest = rest[eq+1+n:]
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	rest = strings.TrimSpace(rest)
	// strconv accepts the format's +Inf/-Inf/NaN spellings directly.
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// unquoteLabel decodes a quoted, escaped label value starting at the
// opening quote, returning the decoded value and how many input bytes
// it consumed (quotes included).
func unquoteLabel(in string) (string, int, error) {
	if in == "" || in[0] != '"' {
		return "", 0, fmt.Errorf("label value not quoted")
	}
	var sb strings.Builder
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '"':
			return sb.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(in) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			switch in[i] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c in label value", in[i])
			}
		default:
			sb.WriteByte(in[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// unescapeHelp reverses escapeHelp in one pass (sequential
// ReplaceAlls would mis-decode a literal backslash followed by 'n').
func unescapeHelp(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case '\\':
				sb.WriteByte('\\')
				i++
				continue
			case 'n':
				sb.WriteByte('\n')
				i++
				continue
			}
		}
		sb.WriteByte(v[i])
	}
	return sb.String()
}

// validMetricName reports whether name matches the exposition
// format's metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches the label-name grammar
// [a-zA-Z_][a-zA-Z0-9_]* (colons are metric-name only).
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// LintExposition checks a text-format scrape against the format
// contract every consumer relies on: each family has HELP and TYPE
// lines with a recognized type, every metric and label name is valid,
// counter samples are finite and non-negative, and each histogram
// family carries its +Inf bucket, _sum and _count series. It returns
// one error per violation (nil-length slice = clean); a syntax-level
// parse failure comes back as a single error.
func LintExposition(data []byte) []error {
	e, err := ParseExposition(data)
	if err != nil {
		return []error{err}
	}
	var errs []error
	lint := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	for _, fam := range e.Families {
		if !validMetricName(fam.Name) {
			lint("metric %q: invalid metric name", fam.Name)
		}
		if fam.Help == "" {
			lint("metric %q: missing # HELP line", fam.Name)
		}
		switch fam.Type {
		case "counter", "gauge", "histogram":
		case "":
			lint("metric %q: missing # TYPE line", fam.Name)
		default:
			lint("metric %q: unknown type %q", fam.Name, fam.Type)
		}
		var hasInf, hasSum, hasCount bool
		for _, s := range fam.Samples {
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if !validLabelName(k) {
					lint("metric %q: invalid label name %q", fam.Name, k)
				}
			}
			if fam.Type == "counter" && !(s.Value >= 0) {
				lint("metric %q: counter value %v is negative or NaN", fam.Name, s.Value)
			}
			switch {
			case s.Name == fam.Name+"_bucket":
				if s.Labels["le"] == "+Inf" {
					hasInf = true
				}
			case s.Name == fam.Name+"_sum":
				hasSum = true
			case s.Name == fam.Name+"_count":
				hasCount = true
			}
		}
		if fam.Type == "histogram" {
			if !hasInf {
				lint("metric %q: histogram without a +Inf bucket", fam.Name)
			}
			if !hasSum {
				lint("metric %q: histogram without a _sum series", fam.Name)
			}
			if !hasCount {
				lint("metric %q: histogram without a _count series", fam.Name)
			}
		}
	}
	return errs
}
