package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramSnapshotQuantile(t *testing.T) {
	h := &Histogram{upper: []float64{1, 2, 4}, counts: make([]uint64, 4)}
	for _, v := range []float64{0.5, 0.5, 1.5, 3, 3, 3, 100, 100} {
		h.Observe(v)
	}
	// counts: le1 -> 2, le2 -> 1, le4 -> 3, +Inf -> 2, count 8
	snap := h.Snapshot()
	cases := []struct {
		q, want float64
	}{
		{0, 0},           // rank 0 lands at the first bucket's lower edge
		{0.25, 1},        // rank 2 fills bucket 0 exactly
		{0.375, 2},       // rank 3 fills bucket 1 exactly
		{0.5, 2 + 2.0/3}, // rank 4: 1/3 into bucket (2,4]
		{0.75, 4},        // rank 6 fills bucket 2 exactly
		{0.99, 4},        // overflow bucket clamps to last finite bound
		{1, 4},
	}
	for _, tc := range cases {
		if got := snap.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramSnapshotQuantileEmpty(t *testing.T) {
	var snap HistogramSnapshot
	if got := snap.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	snap = HistogramSnapshot{Upper: []float64{1}, Counts: []uint64{0, 0}}
	if got := snap.Quantile(0.5); got != 0 {
		t.Fatalf("zero-count Quantile = %v, want 0", got)
	}
}

func TestHistogramSnapshotQuantileClamps(t *testing.T) {
	h := &Histogram{upper: []float64{1}, counts: make([]uint64, 2)}
	h.Observe(0.5)
	snap := h.Snapshot()
	if got := snap.Quantile(-1); got != 0 {
		t.Errorf("Quantile(-1) = %v, want 0", got)
	}
	if got := snap.Quantile(2); got != 1 {
		t.Errorf("Quantile(2) = %v, want 1", got)
	}
}

// TestPrometheusQuantileLines checks the derived summary-style lines
// appear for labelled histogram families too, carrying both the family
// label and the quantile label.
func TestPrometheusQuantileLines(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("haccs_span_seconds", "Span durations.", "span", []float64{1, 10})
	hv.With("train").Observe(0.5)
	hv.With("train").Observe(5)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`haccs_span_seconds{span="train",quantile="0.5"} 1`,
		`haccs_span_seconds{span="train",quantile="0.9"} `,
		`haccs_span_seconds{span="train",quantile="0.99"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
