package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// countingWriter records how many Write calls reach the underlying
// destination, so the buffering contract is observable.
type countingWriter struct {
	bytes.Buffer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.Buffer.Write(p)
}

// TestJSONLSinkBuffers checks Emit stays in memory until Flush: no
// syscall-per-event on the round hot path.
func TestJSONLSinkBuffers(t *testing.T) {
	var w countingWriter
	s := NewJSONLSink(&w)
	for round := 0; round < 10; round++ {
		s.Emit(RoundStart(round))
		s.Emit(Aggregated(round, []int{1, 2}, 3.5, float64(round)))
	}
	if w.writes != 0 {
		t.Fatalf("underlying writer saw %d writes before Flush", w.writes)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.writes == 0 {
		t.Fatal("Flush did not reach the underlying writer")
	}
	events, err := ReadJSONL(&w.Buffer)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 20 {
		t.Fatalf("decoded %d events, want 20", len(events))
	}
	if events[1].Kind != KindAggregated || events[1].VirtualSec != 3.5 {
		t.Errorf("event mangled: %+v", events[1])
	}
}

// TestJSONLSinkSmallBuffer checks a filled buffer spills without
// waiting for Flush.
func TestJSONLSinkSmallBuffer(t *testing.T) {
	var w countingWriter
	s := NewJSONLSinkSize(&w, 64)
	for i := 0; i < 20; i++ {
		s.Emit(RoundStart(i))
	}
	if w.writes == 0 {
		t.Fatal("tiny buffer never spilled")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(&w.Buffer)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 20 {
		t.Fatalf("decoded %d events, want 20", len(events))
	}
}

// failingDest fails writes and/or close, and records whether Close was
// called.
type failingDest struct {
	writeErr error
	closeErr error
	closed   bool
}

func (d *failingDest) Write(p []byte) (int, error) {
	if d.writeErr != nil {
		return 0, d.writeErr
	}
	return len(p), nil
}

func (d *failingDest) Close() error {
	d.closed = true
	return d.closeErr
}

// TestJSONLSinkCloseWriteError checks a buffered write failure is
// sticky: surfaced by Close, and again by every later Flush/Close.
func TestJSONLSinkCloseWriteError(t *testing.T) {
	wantErr := errors.New("disk full")
	d := &failingDest{writeErr: wantErr}
	s := NewJSONLSink(d)
	s.c = d
	s.Emit(RoundStart(0))
	if err := s.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close error = %v, want %v", err, wantErr)
	}
	if !d.closed {
		t.Error("Close did not close the owned destination")
	}
	if err := s.Flush(); !errors.Is(err, wantErr) {
		t.Errorf("error not sticky: Flush after Close = %v", err)
	}
}

// TestJSONLSinkCloseCloserError checks a failing owned Closer surfaces
// even when every write succeeded, and that Close is idempotent on the
// destination.
func TestJSONLSinkCloseCloserError(t *testing.T) {
	wantErr := errors.New("close failed")
	d := &failingDest{closeErr: wantErr}
	s := NewJSONLSink(d)
	s.c = d
	s.Emit(RoundStart(0))
	if err := s.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close error = %v, want %v", err, wantErr)
	}
	d.closed = false
	if err := s.Close(); !errors.Is(err, wantErr) {
		t.Errorf("second Close = %v, want sticky %v", err, wantErr)
	}
	if d.closed {
		t.Error("second Close re-closed the destination")
	}
}

// TestStatsdDroppedFlushes checks a failed UDP write is counted — in
// Dropped(), in the registry self-metric — and returned as an error.
func TestStatsdDroppedFlushes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("haccs_rounds_total", "").Inc()

	d := &failingDest{writeErr: errors.New("network unreachable")}
	sd := NewStatsdConn(d, "haccs")
	if err := sd.Flush(reg); err == nil {
		t.Fatal("Flush over a failing conn returned nil")
	}
	if got := sd.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d, want 1", got)
	}
	if v := reg.Counter("haccs_statsd_dropped_flushes_total", "").Value(); v != 1 {
		t.Errorf("self-metric = %v, want 1", v)
	}

	// Recovery: the connection heals, the next flush succeeds and the
	// loss stays visible (the self-metric delta rides along).
	d.writeErr = nil
	reg.Counter("haccs_rounds_total", "").Inc()
	if err := sd.Flush(reg); err != nil {
		t.Fatalf("healed flush: %v", err)
	}
	if got := sd.Dropped(); got != 1 {
		t.Errorf("Dropped() after recovery = %d, want 1", got)
	}
}

// TestStatsdDroppedSelfMetricLine checks the self-metric actually
// renders into the statsd stream on the flush after a loss.
func TestStatsdDroppedSelfMetricLine(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("haccs_rounds_total", "").Inc()
	d := &failingDest{writeErr: errors.New("boom")}
	sd := NewStatsdConn(d, "")
	_ = sd.Flush(reg)

	var sb strings.Builder
	if err := sd.EmitTo(&sb, reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "haccs_statsd_dropped_flushes_total:1|c\n") {
		t.Errorf("dropped-flush self-metric missing from stream:\n%s", sb.String())
	}
}
