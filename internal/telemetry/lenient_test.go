package telemetry

import (
	"strings"
	"testing"
)

func TestReadJSONLLenient(t *testing.T) {
	in := strings.Join([]string{
		`{"kind":"round_start","round":0,"cluster":-1,"client":-1}`,
		`{"kind":"selection","round":0,"cluster":-1,"client":-1,"clients":[1,2]}`,
		`not json at all`,
		``,
		`{"kind":"aggregated","round":0,"cluster":-1,"cli`, // truncated tail
	}, "\n") + "\n"

	var skippedLines []int
	events, skipped, err := ReadJSONLLenient(strings.NewReader(in), func(line int, err error) {
		skippedLines = append(skippedLines, line)
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Kind != KindRoundStart || events[1].Kind != KindSelection {
		t.Fatalf("decoded kinds %q, %q", events[0].Kind, events[1].Kind)
	}
	if len(skippedLines) != 2 || skippedLines[0] != 3 || skippedLines[1] != 5 {
		t.Fatalf("skipped line numbers = %v, want [3 5]", skippedLines)
	}
}

// TestReadJSONLLenientMatchesStrict checks a clean stream decodes
// identically through both readers.
func TestReadJSONLLenientMatchesStrict(t *testing.T) {
	var sb strings.Builder
	sink := NewJSONLSink(&sb)
	sink.Emit(RoundStart(1))
	sink.Emit(Selection(1, []int{0, 3}))
	sink.Emit(Aggregated(1, []int{0, 3}, 2.5, 10))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	strict, err := ReadJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	lenient, skipped, err := ReadJSONLLenient(strings.NewReader(sb.String()), nil)
	if err != nil || skipped != 0 {
		t.Fatalf("lenient read: err %v, skipped %d", err, skipped)
	}
	if len(strict) != len(lenient) {
		t.Fatalf("lengths differ: %d vs %d", len(strict), len(lenient))
	}
	for i := range strict {
		if strict[i].Kind != lenient[i].Kind || strict[i].Round != lenient[i].Round {
			t.Fatalf("event %d differs: %+v vs %+v", i, strict[i], lenient[i])
		}
	}
}
