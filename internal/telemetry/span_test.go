package telemetry

import (
	"testing"
)

// TestSpanIDRoundTrip pins the hex wire form of span IDs and the
// malformed-input contract (0, which is never a live ID).
func TestSpanIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, 1 << 63, ^uint64(0)} {
		s := FormatSpanID(id)
		if got := ParseSpanID(s); got != id {
			t.Errorf("round trip %d -> %q -> %d", id, s, got)
		}
	}
	for _, bad := range []string{"", "xyz", "-1", "1g", "ffffffffffffffff0"} {
		if got := ParseSpanID(bad); got != 0 {
			t.Errorf("ParseSpanID(%q) = %d, want 0", bad, got)
		}
	}
}

// TestNewSpanIDUnique checks IDs are non-zero and distinct.
func TestNewSpanIDUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id == 0 {
			t.Fatal("zero span ID")
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %x", id)
		}
		seen[id] = true
	}
}

// TestSpanContextValid pins the half-set-is-a-protocol-error contract.
func TestSpanContextValid(t *testing.T) {
	cases := []struct {
		sc    SpanContext
		zero  bool
		valid bool
	}{
		{SpanContext{}, true, true},
		{SpanContext{TraceID: 1, SpanID: 2}, false, true},
		{SpanContext{TraceID: 1}, false, false},
		{SpanContext{SpanID: 2}, false, false},
	}
	for _, c := range cases {
		if c.sc.Zero() != c.zero || c.sc.Valid() != c.valid {
			t.Errorf("%+v: Zero()=%v Valid()=%v, want %v %v",
				c.sc, c.sc.Zero(), c.sc.Valid(), c.zero, c.valid)
		}
	}
}

// TestNewSpanTracerOff pins the documented off state: both inputs nil
// means a nil tracer.
func TestNewSpanTracerOff(t *testing.T) {
	if tr := NewSpanTracer(nil, nil); tr != nil {
		t.Errorf("NewSpanTracer(nil, nil) = %v, want nil", tr)
	}
}

// TestSpanTree drives the full round span shape against a memory sink
// and checks every parent link, round/client attribution and the
// histogram family.
func TestSpanTree(t *testing.T) {
	sink := &MemorySink{}
	reg := NewRegistry()
	tr := NewSpanTracer(sink, reg)

	root := tr.Root("round", 7)
	disp := root.Child("dispatch")
	train := disp.ChildClient("train", 3)
	train.End()
	disp.End()
	root.End()

	events := sink.Filter(KindSpan)
	if len(events) != 3 {
		t.Fatalf("got %d span events, want 3", len(events))
	}
	// Ends arrive innermost first.
	evTrain, evDisp, evRoot := events[0], events[1], events[2]
	if evTrain.Span != "train" || evDisp.Span != "dispatch" || evRoot.Span != "round" {
		t.Fatalf("span names %q %q %q", evTrain.Span, evDisp.Span, evRoot.Span)
	}
	trace := evRoot.TraceID
	if ParseSpanID(trace) == 0 {
		t.Fatalf("root trace ID %q unparsable", trace)
	}
	for _, e := range events {
		if e.TraceID != trace {
			t.Errorf("span %q trace %q, want %q", e.Span, e.TraceID, trace)
		}
		if e.Round != 7 {
			t.Errorf("span %q round %d", e.Span, e.Round)
		}
		if e.StartSec < 0 {
			t.Errorf("span %q start %v, want >= 0", e.Span, e.StartSec)
		}
		if e.WallSec < 0 {
			t.Errorf("span %q duration %v", e.Span, e.WallSec)
		}
	}
	if evRoot.ParentID != "" {
		t.Errorf("root parent %q, want empty", evRoot.ParentID)
	}
	if evDisp.ParentID != evRoot.SpanID {
		t.Errorf("dispatch parent %q, want %q", evDisp.ParentID, evRoot.SpanID)
	}
	if evTrain.ParentID != evDisp.SpanID {
		t.Errorf("train parent %q, want %q", evTrain.ParentID, evDisp.SpanID)
	}
	if evTrain.Client != 3 {
		t.Errorf("train client %d, want 3", evTrain.Client)
	}
	if evRoot.Client != -1 || evDisp.Client != -1 {
		t.Errorf("non-client spans carry clients %d %d", evRoot.Client, evDisp.Client)
	}

	// Each name observed once into haccs_span_seconds{span=<name>}.
	counts := map[string]uint64{}
	for _, s := range reg.Snapshot() {
		if s.Name == "haccs_span_seconds" {
			counts[s.LabelValue] = s.Hist.Count
		}
	}
	for _, name := range []string{"round", "dispatch", "train"} {
		if counts[name] != 1 {
			t.Errorf("haccs_span_seconds{span=%q} count %d, want 1", name, counts[name])
		}
	}
}

// TestSpanFromContext checks the receiving side of wire propagation
// parents correctly, and that empty/half-set contexts yield no-op
// spans.
func TestSpanFromContext(t *testing.T) {
	sink := &MemorySink{}
	tr := NewSpanTracer(sink, nil)

	sc := SpanContext{TraceID: 0xabc, SpanID: 0xdef}
	sp := tr.FromContext(sc, "client_train", 4, 9)
	sp.End()

	events := sink.Filter(KindSpan)
	if len(events) != 1 {
		t.Fatalf("got %d events", len(events))
	}
	e := events[0]
	if e.TraceID != FormatSpanID(0xabc) || e.ParentID != FormatSpanID(0xdef) {
		t.Errorf("trace/parent = %q/%q", e.TraceID, e.ParentID)
	}
	if e.Round != 4 || e.Client != 9 {
		t.Errorf("round/client = %d/%d", e.Round, e.Client)
	}

	for _, bad := range []SpanContext{{}, {TraceID: 1}, {SpanID: 1}} {
		sp := tr.FromContext(bad, "x", 0, 0)
		sp.End()
	}
	if n := len(sink.Filter(KindSpan)); n != 1 {
		t.Errorf("invalid contexts produced %d extra span events", n-1)
	}
}

// TestEmitForeign checks wire-shipped spans keep their minted IDs and
// get the unknown-clock start marker.
func TestEmitForeign(t *testing.T) {
	sink := &MemorySink{}
	reg := NewRegistry()
	tr := NewSpanTracer(sink, reg)

	tr.EmitForeign("client_train", 0x11, 0x22, 0x33, 5, 8, 0.25)

	events := sink.Filter(KindSpan)
	if len(events) != 1 {
		t.Fatalf("got %d events", len(events))
	}
	e := events[0]
	if e.Span != "client_train" || e.TraceID != "11" || e.SpanID != "22" || e.ParentID != "33" {
		t.Errorf("IDs mangled: %+v", e)
	}
	if e.StartSec != -1 {
		t.Errorf("foreign start %v, want -1 (incomparable clock)", e.StartSec)
	}
	if e.WallSec != 0.25 || e.Round != 5 || e.Client != 8 {
		t.Errorf("payload mangled: %+v", e)
	}
	for _, s := range reg.Snapshot() {
		if s.Name == "haccs_span_seconds" && s.LabelValue == "client_train" && s.Hist.Count != 1 {
			t.Errorf("foreign span not observed into histogram")
		}
	}

	// Nil tracer: no-op, no panic.
	var off *SpanTracer
	off.EmitForeign("x", 1, 2, 3, 0, 0, 1)
}

// TestSpanNilTracerZeroAlloc pins the zero-overhead contract: the fully
// instrumented span lifecycle allocates nothing when tracing is off.
func TestSpanNilTracerZeroAlloc(t *testing.T) {
	var tr *SpanTracer
	allocs := testing.AllocsPerRun(100, func() {
		root := tr.Root("round", 1)
		sp := root.Child("dispatch")
		ts := sp.ChildClient("train", 3)
		if !ts.Context().Zero() {
			t.Error("nil-tracer span leaked a context")
		}
		fc := tr.FromContext(SpanContext{TraceID: 1, SpanID: 2}, "client_train", 1, 3)
		fc.End()
		ts.End()
		sp.End()
		root.End()
	})
	if allocs != 0 {
		t.Errorf("nil-tracer span lifecycle allocates %v/op, want 0", allocs)
	}
}
