package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// buildHostileRegistry registers one metric of every shape with label
// values exercising the full escape set (backslash, quote, newline)
// so the round-trip test covers the cases that used to corrupt the
// exposition.
func buildHostileRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("hostile_counter_total", "A counter.").Add(3)
	reg.Gauge("hostile_gauge", `Help with a backslash \ and
a newline.`).Set(-2.5)
	cv := reg.CounterVec("hostile_labeled_total", "Labelled counter.", "path")
	cv.With(`C:\temp\"quoted"`).Add(1)
	cv.With("line1\nline2").Add(2)
	cv.With(`trailing backslash \`).Add(4)
	h := reg.Histogram("hostile_seconds", "A histogram.", []float64{0.1, 1})
	// Exactly representable values so the _sum survives the text
	// round trip bit-for-bit.
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(5)
	reg.InfoGauge("hostile_info", "Info gauge.", [][2]string{
		{"revision", "abc123"},
		{"note", `v="1"\n`},
	}).Set(1)
	return reg
}

func TestExpositionRoundTrip(t *testing.T) {
	reg := buildHostileRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	e, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseExposition: %v\nexposition:\n%s", err, buf.String())
	}

	cases := []struct {
		series string
		labels [][2]string
		want   float64
	}{
		{"hostile_counter_total", nil, 3},
		{"hostile_gauge", nil, -2.5},
		{"hostile_labeled_total", [][2]string{{"path", `C:\temp\"quoted"`}}, 1},
		{"hostile_labeled_total", [][2]string{{"path", "line1\nline2"}}, 2},
		{"hostile_labeled_total", [][2]string{{"path", `trailing backslash \`}}, 4},
		{"hostile_seconds_count", nil, 3},
		{"hostile_seconds_sum", nil, 5.5625},
		{"hostile_seconds_bucket", [][2]string{{"le", "+Inf"}}, 3},
		{"hostile_info", [][2]string{{"revision", "abc123"}, {"note", `v="1"\n`}}, 1},
	}
	for _, c := range cases {
		got, ok := e.Value(c.series, c.labels...)
		if !ok {
			t.Errorf("series %s %v: not found after round trip", c.series, c.labels)
			continue
		}
		if got != c.want {
			t.Errorf("series %s %v: got %v, want %v", c.series, c.labels, got, c.want)
		}
	}

	// Help text must survive its own escaping round trip.
	fam := e.Family("hostile_gauge")
	if fam == nil {
		t.Fatal("hostile_gauge family missing")
	}
	wantHelp := `Help with a backslash \ and
a newline.`
	if fam.Help != wantHelp {
		t.Errorf("help round trip: got %q, want %q", fam.Help, wantHelp)
	}
}

func TestEscapedExpositionStaysSingleLinePerSample(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("esc_total", "Escaping.", "k").With("a\nb\"c\\d").Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // HELP, TYPE, one sample
		t.Fatalf("expected 3 exposition lines, got %d:\n%s", len(lines), out)
	}
	want := `esc_total{k="a\nb\"c\\d"} 1`
	if lines[2] != want {
		t.Errorf("escaped sample line:\ngot  %s\nwant %s", lines[2], want)
	}
}

// TestExpositionConformance is the satellite conformance check: every
// metric the repo's components register must lint clean — HELP and
// TYPE present, names valid, histograms complete. Registering a
// representative instance of each family here means a rename or a
// malformed help string fails this test before any scraper sees it.
func TestExpositionConformance(t *testing.T) {
	reg := buildHostileRegistry()
	SetBuildInfo(reg)
	c := NewRuntimeCollector(reg, 0)
	c.SampleOnce()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, err := range LintExposition(buf.Bytes()) {
		t.Errorf("lint: %v", err)
	}
}

func TestLintFlagsViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{
			"missing help",
			"# TYPE x counter\nx 1\n",
			"missing # HELP",
		},
		{
			"missing type",
			"# HELP x help\nx 1\n",
			"missing # TYPE",
		},
		{
			"unknown type",
			"# HELP x help\n# TYPE x summary\nx 1\n",
			"unknown type",
		},
		{
			"bad metric name",
			"# HELP 9x help\n# TYPE 9x counter\n9x 1\n",
			"invalid metric name",
		},
		{
			"negative counter",
			"# HELP x help\n# TYPE x counter\nx -1\n",
			"negative or NaN",
		},
		{
			"incomplete histogram",
			"# HELP h help\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\n",
			"+Inf bucket",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := LintExposition([]byte(c.in))
			if len(errs) == 0 {
				t.Fatalf("expected lint errors, got none")
			}
			found := false
			for _, err := range errs {
				if strings.Contains(err.Error(), c.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no lint error containing %q in %v", c.want, errs)
			}
		})
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for _, in := range []string{
		"x{k=\"unterminated} 1\n",
		"x{k=unquoted} 1\n",
		"x{k=\"v\"\n",
		"x notanumber\n",
		"x\n",
	} {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("ParseExposition(%q): expected error, got nil", in)
		}
	}
}
