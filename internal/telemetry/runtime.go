package telemetry

import (
	"runtime"
	"runtime/debug"
	rtmetrics "runtime/metrics"
	"time"
)

// RuntimeCollector samples Go runtime health into haccs_runtime_*
// gauges so a /metrics scrape carries the coordinator's own resource
// envelope next to the federated-round series: live heap bytes, GC
// pause p99, goroutine count and scheduler latency p99 (all via
// runtime/metrics), plus the conventional haccs_build_info gauge
// stamping the binary's VCS revision and Go version.
//
// A nil *RuntimeCollector is fully inert: every method returns
// immediately and allocates nothing (pinned by the tracked
// runtime_sample_disabled benchmark), mirroring the repo-wide
// nil-registry discipline — uninstrumented runs pay nothing.
type RuntimeCollector struct {
	interval time.Duration
	samples  []rtmetrics.Sample

	heapBytes  *Gauge
	goroutines *Gauge
	gcPauseP99 *Gauge
	schedP99   *Gauge
	gcCycles   *Gauge

	stop chan struct{}
	done chan struct{}
}

// The runtime/metrics keys the collector reads. All are supported on
// every Go release this module builds with; a key the runtime refuses
// (KindBad) is skipped defensively rather than panicking.
const (
	keyHeapBytes  = "/memory/classes/heap/objects:bytes"
	keyGoroutines = "/sched/goroutines:goroutines"
	keyGCPauses   = "/gc/pauses:seconds"
	keySchedLat   = "/sched/latencies:seconds"
	keyGCCycles   = "/gc/cycles/total:gc-cycles"
)

// NewRuntimeCollector registers the haccs_runtime_* gauges (and the
// haccs_build_info stamp) on reg and returns a collector sampling
// them every interval once Start is called. interval <= 0 defaults to
// one second. A nil registry returns a nil (inert) collector.
func NewRuntimeCollector(reg *Registry, interval time.Duration) *RuntimeCollector {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	SetBuildInfo(reg)
	c := &RuntimeCollector{
		interval: interval,
		samples: []rtmetrics.Sample{
			{Name: keyHeapBytes},
			{Name: keyGoroutines},
			{Name: keyGCPauses},
			{Name: keySchedLat},
			{Name: keyGCCycles},
		},
		heapBytes:  reg.Gauge("haccs_runtime_heap_bytes", "Live heap bytes (runtime/metrics /memory/classes/heap/objects:bytes)."),
		goroutines: reg.Gauge("haccs_runtime_goroutines", "Goroutines currently alive."),
		gcPauseP99: reg.Gauge("haccs_runtime_gc_pause_p99_seconds", "p99 stop-the-world GC pause over the process lifetime."),
		schedP99:   reg.Gauge("haccs_runtime_sched_latency_p99_seconds", "p99 goroutine scheduling latency over the process lifetime."),
		gcCycles:   reg.Gauge("haccs_runtime_gc_cycles", "Completed GC cycles since process start."),
	}
	return c
}

// SetBuildInfo registers the conventional build-info gauge —
// haccs_build_info{revision,go_version} 1 — resolving the revision
// from the binary's embedded VCS stamp ("unknown" when the build
// carried none, e.g. test binaries).
func SetBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	reg.InfoGauge("haccs_build_info", "Build metadata carried as labels; the value is always 1.", [][2]string{
		{"revision", buildRevision()},
		{"go_version", runtime.Version()},
	}).Set(1)
}

// buildRevision extracts the short VCS revision from the embedded
// build info.
func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return "unknown"
}

// SampleOnce reads the runtime metrics and updates the gauges. Safe
// to call whether or not the background loop runs (the smoke checks
// call it right before a scrape for a deterministic reading); no-op
// on a nil collector.
func (c *RuntimeCollector) SampleOnce() {
	if c == nil {
		return
	}
	rtmetrics.Read(c.samples)
	for i := range c.samples {
		s := &c.samples[i]
		switch s.Name {
		case keyHeapBytes:
			if s.Value.Kind() == rtmetrics.KindUint64 {
				c.heapBytes.Set(float64(s.Value.Uint64()))
			}
		case keyGoroutines:
			if s.Value.Kind() == rtmetrics.KindUint64 {
				c.goroutines.Set(float64(s.Value.Uint64()))
			}
		case keyGCPauses:
			if s.Value.Kind() == rtmetrics.KindFloat64Histogram {
				c.gcPauseP99.Set(histQuantile(s.Value.Float64Histogram(), 0.99))
			}
		case keySchedLat:
			if s.Value.Kind() == rtmetrics.KindFloat64Histogram {
				c.schedP99.Set(histQuantile(s.Value.Float64Histogram(), 0.99))
			}
		case keyGCCycles:
			if s.Value.Kind() == rtmetrics.KindUint64 {
				c.gcCycles.Set(float64(s.Value.Uint64()))
			}
		}
	}
}

// Start launches the background sampling goroutine. Idempotent: a
// second Start while running is a no-op. No-op on a nil collector.
func (c *RuntimeCollector) Start() {
	if c == nil || c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	c.SampleOnce()
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.SampleOnce()
			}
		}
	}(c.stop, c.done)
}

// Stop halts the sampling goroutine and waits for it to exit (the
// shutdown-audit goroutine counting relies on this being synchronous).
// Safe on a nil or never-started collector, and idempotent.
func (c *RuntimeCollector) Stop() {
	if c == nil || c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop, c.done = nil, nil
}

// histQuantile estimates the q-quantile of a runtime/metrics
// histogram: the upper edge of the bucket holding the target rank,
// clamped to the finite bucket range (the runtime's first and last
// boundaries may be ±Inf). An empty histogram returns 0.
func histQuantile(h *rtmetrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	lastFinite := 0.0
	for i, cnt := range h.Counts {
		// Bucket i spans Buckets[i]..Buckets[i+1].
		upper := h.Buckets[i+1]
		if upper < maxFloat(h.Buckets) {
			lastFinite = upper
		}
		cum += cnt
		if float64(cum) >= rank {
			if isInf(upper) {
				return lastFinite
			}
			return upper
		}
	}
	return lastFinite
}

func isInf(v float64) bool { return v > 1e308 || v < -1e308 }

func maxFloat(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m && !isInf(v) {
			m = v
		}
	}
	return m
}
