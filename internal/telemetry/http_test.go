package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeEndpoints boots the real HTTP server on an ephemeral port
// and exercises both endpoints end to end.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("haccs_rounds_total", "Rounds.").Add(7)
	ring := NewRingSink(8)
	for i := 0; i < 5; i++ {
		ring.Emit(RoundStart(i))
	}

	srv, err := Serve("127.0.0.1:0", reg, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("metrics content type = %q", ctype)
	}
	if !strings.Contains(metrics, "haccs_rounds_total 7") {
		t.Errorf("metrics body missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "# TYPE haccs_rounds_total counter") {
		t.Errorf("metrics body missing TYPE header:\n%s", metrics)
	}

	trace, _ := get("/debug/trace?n=2")
	events, err := ReadJSONL(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("trace not valid JSONL: %v\n%s", err, trace)
	}
	if len(events) != 2 || events[0].Round != 3 || events[1].Round != 4 {
		t.Errorf("trace tail = %+v", events)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/trace?n=bogus", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", resp.StatusCode)
	}
}

func TestHandlerNilParts(t *testing.T) {
	h := Handler(nil, nil)
	for _, path := range []string{"/metrics", "/debug/trace"} {
		req, _ := http.NewRequest("GET", path, nil)
		rec := newRecorder()
		h.ServeHTTP(rec, req)
		if rec.status != http.StatusNotFound {
			t.Errorf("%s with nil backing: status %d, want 404", path, rec.status)
		}
	}
}

// newRecorder is a minimal ResponseWriter; net/http/httptest is
// avoided to keep the package's import surface small.
type recorder struct {
	status int
	header http.Header
	body   strings.Builder
}

func newRecorder() *recorder { return &recorder{status: 200, header: http.Header{}} }

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) { r.status = code }

func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// TestDebugSpansEndpoint exercises the span-tree view over HTTP in both
// renderings, fed by real spans recorded into the ring.
func TestDebugSpansEndpoint(t *testing.T) {
	ring := NewRingSink(32)
	tr := NewSpanTracer(ring, nil)
	root := tr.Root("round", 2)
	disp := root.Child("dispatch")
	ts := disp.ChildClient("train", 5)
	ts.End()
	disp.End()
	root.End()
	ring.Emit(RoundStart(2)) // non-span noise the endpoint must filter

	srv, err := Serve("127.0.0.1:0", nil, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/spans", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{"round 2", "round", "dispatch", "train client=5"} {
		if !strings.Contains(text, want) {
			t.Errorf("span tree missing %q:\n%s", want, text)
		}
	}
	// Nesting: train is indented deeper than dispatch.
	if strings.Index(text, "  dispatch") > strings.Index(text, "    train") {
		t.Errorf("span tree not nested:\n%s", text)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/debug/spans?format=json", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	var spans []Event
	err = json.NewDecoder(resp.Body).Decode(&spans)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("json view has %d spans, want 3 (non-span events filtered)", len(spans))
	}
	for _, e := range spans {
		if e.Kind != KindSpan {
			t.Errorf("non-span event leaked: %+v", e)
		}
	}
}

// TestServeOptions checks the extension hooks: an extra endpoint mounts
// on the mux and WithPprof exposes the profile index.
func TestServeOptions(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil,
		WithEndpoint("/debug/custom", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprint(w, "custom ok")
		})),
		WithPprof(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/custom", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "custom ok" {
		t.Errorf("custom endpoint body %q", body)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: status %d body %.80q", resp.StatusCode, body)
	}
}

// TestWriteSpanTreeOrphans checks spans whose parents fell out of the
// ring window are promoted to roots instead of vanishing.
func TestWriteSpanTreeOrphans(t *testing.T) {
	spans := []Event{
		SpanEnded("train", 0xa, 0x2, 0x1 /* parent not in window */, 0, 3, 0.1, 0.5),
	}
	var sb strings.Builder
	if err := WriteSpanTree(&sb, spans); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "train client=3") {
		t.Errorf("orphan dropped:\n%s", sb.String())
	}
	sb.Reset()
	if err := WriteSpanTree(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no spans recorded") {
		t.Errorf("empty output %q", sb.String())
	}
}
