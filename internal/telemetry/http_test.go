package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeEndpoints boots the real HTTP server on an ephemeral port
// and exercises both endpoints end to end.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("haccs_rounds_total", "Rounds.").Add(7)
	ring := NewRingSink(8)
	for i := 0; i < 5; i++ {
		ring.Emit(RoundStart(i))
	}

	srv, err := Serve("127.0.0.1:0", reg, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("metrics content type = %q", ctype)
	}
	if !strings.Contains(metrics, "haccs_rounds_total 7") {
		t.Errorf("metrics body missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "# TYPE haccs_rounds_total counter") {
		t.Errorf("metrics body missing TYPE header:\n%s", metrics)
	}

	trace, _ := get("/debug/trace?n=2")
	events, err := ReadJSONL(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("trace not valid JSONL: %v\n%s", err, trace)
	}
	if len(events) != 2 || events[0].Round != 3 || events[1].Round != 4 {
		t.Errorf("trace tail = %+v", events)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/trace?n=bogus", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", resp.StatusCode)
	}
}

func TestHandlerNilParts(t *testing.T) {
	h := Handler(nil, nil)
	for _, path := range []string{"/metrics", "/debug/trace"} {
		req, _ := http.NewRequest("GET", path, nil)
		rec := newRecorder()
		h.ServeHTTP(rec, req)
		if rec.status != http.StatusNotFound {
			t.Errorf("%s with nil backing: status %d, want 404", path, rec.status)
		}
	}
}

// newRecorder is a minimal ResponseWriter; net/http/httptest is
// avoided to keep the package's import surface small.
type recorder struct {
	status int
	header http.Header
	body   strings.Builder
}

func newRecorder() *recorder { return &recorder{status: 200, header: http.Header{}} }

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) { r.status = code }

func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }
