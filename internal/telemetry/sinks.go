package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// MemorySink records every event in order; the sink tests and the
// end-to-end engine tests assert against it.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer.
func (m *MemorySink) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Filter returns the recorded events of one kind, in order.
func (m *MemorySink) Filter(kind string) []Event {
	var out []Event
	for _, e := range m.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of recorded events.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// JSONLSink streams events as one JSON object per line. Emit encodes
// into an in-memory buffer — the underlying writer sees data only when
// the buffer fills, on Flush, or on Close — so the round hot path never
// blocks on a syscall per event. Writes are serialized; I/O errors are
// sticky and reported by Flush/Close so hot paths never handle them.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	buf *bufio.Writer
	c   io.Closer
	err error
}

// jsonlBufferBytes is the default Emit buffer: large enough that a
// typical round's worth of events (a few KiB) coalesces into one write.
const jsonlBufferBytes = 64 << 10

// NewJSONLSink wraps w with the default buffer. The caller owns w's
// lifetime; call Close to flush buffering.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return NewJSONLSinkSize(w, jsonlBufferBytes)
}

// NewJSONLSinkSize wraps w with an explicit buffer size in bytes
// (values < 1 fall back to the default).
func NewJSONLSinkSize(w io.Writer, size int) *JSONLSink {
	if size < 1 {
		size = jsonlBufferBytes
	}
	buf := bufio.NewWriterSize(w, size)
	return &JSONLSink{enc: json.NewEncoder(buf), buf: buf}
}

// NewJSONLFile creates (truncates) path and returns a sink that owns
// the file handle.
func NewJSONLFile(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: jsonl sink: %w", err)
	}
	s := NewJSONLSink(f)
	s.c = f
	return s, nil
}

// Emit implements Tracer.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(e)
	}
	s.mu.Unlock()
}

// Flush pushes the buffered events to the underlying writer, returning
// the first error the sink has hit so far (errors are sticky). Use it
// to checkpoint a long run; Close flushes implicitly.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.buf.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}

// Close flushes and (when the sink owns its file) closes the
// underlying writer, returning the first error the sink hit.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.buf.Flush(); s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); s.err == nil {
			s.err = err
		}
		s.c = nil
	}
	return s.err
}

// ReadJSONL decodes a JSONL event stream written by JSONLSink.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("telemetry: decode jsonl: %w", err)
		}
		out = append(out, e)
	}
}

// ReadJSONLLenient decodes a JSONL event stream line by line, skipping
// lines that are not valid Event JSON (hand-edited files, truncated
// tails from crashed runs) instead of aborting. It returns the decoded
// events, the number of skipped lines, and any underlying read error.
// onSkip, when non-nil, is called with the 1-based line number and the
// decode error for each skipped line.
func ReadJSONLLenient(r io.Reader, onSkip func(line int, err error)) ([]Event, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []Event
	skipped, line := 0, 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			skipped++
			if onSkip != nil {
				onSkip(line, err)
			}
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, skipped, fmt.Errorf("telemetry: read jsonl: %w", err)
	}
	return out, skipped, nil
}

// RingSink keeps the most recent events in a fixed-capacity ring; the
// /debug/trace endpoint tails it.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int
}

// NewRingSink returns a ring holding the last capacity events.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1024
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Emit implements Tracer.
func (r *RingSink) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Tail returns up to n of the most recent events, oldest first. n <= 0
// returns everything retained.
func (r *RingSink) Tail(n int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	have := r.total
	if have > len(r.buf) {
		have = len(r.buf)
	}
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Event, 0, n)
	for i := r.next - n; i < r.next; i++ {
		out = append(out, r.buf[(i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Total returns how many events the ring has ever seen.
func (r *RingSink) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
