// Package telemetry is the live observability layer for the HACCS
// stack: a dependency-free, concurrency-safe metrics registry
// (counters, gauges, fixed-bucket histograms) plus a structured
// round-trace event stream with pluggable sinks (JSONL, statsd,
// in-memory, HTTP). The simulation engine, the HACCS scheduler, the
// clustering substrate and the flnet coordinator all record into it;
// everything is optional and nil-safe, so uninstrumented runs pay
// nothing.
//
// Metric names form a stable, documented contract (see the
// Observability section of README.md): once a dashboard scrapes
// haccs_rounds_total it must keep working across PRs.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// metricType distinguishes the exposition families.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing float64. All methods are safe
// for concurrent use.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative deltas panic (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("telemetry: counter decreased")
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an arbitrary float64 that can go up and down. All methods
// are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (negative allowed).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value, Prometheus-style
// (cumulative on exposition, non-cumulative internally). All methods
// are safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	upper  []float64 // sorted upper bounds, +Inf bucket is implicit
	counts []uint64  // len(upper)+1, last is the overflow (+Inf) bucket
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Upper  []float64 // bucket upper bounds (exclusive of +Inf)
	Counts []uint64  // per-bucket (non-cumulative) counts, len(Upper)+1
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state under the lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Upper:  append([]float64(nil), h.upper...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts by linear interpolation within the bucket holding the target
// rank, the standard Prometheus histogram_quantile estimate: the first
// bucket interpolates from 0, and a rank landing in the +Inf overflow
// bucket returns the last finite upper bound (the estimate is clamped
// to the observable range). An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Upper) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, upper := range s.Upper {
		prev := cum
		cum += s.Counts[i]
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = s.Upper[i-1]
			}
			if s.Counts[i] == 0 {
				return upper
			}
			frac := (rank - float64(prev)) / float64(s.Counts[i])
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
	}
	return s.Upper[len(s.Upper)-1]
}

// DefBuckets are the default histogram bounds (seconds): wide enough
// for both wall-clock training times and simulated round latencies.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300}

// child is one labelled instance inside a family.
type child struct {
	labelValue string
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

// family groups all children sharing a metric name.
type family struct {
	name     string
	help     string
	typ      metricType
	labelKey string // "" for unlabelled metrics
	buckets  []float64
	// pairs, when non-nil, marks an info-style family (a single gauge
	// child carrying a fixed set of label pairs, the Prometheus
	// *_info idiom). Mutually exclusive with labelKey.
	pairs [][2]string

	mu       sync.Mutex
	children map[string]*child
}

func (f *family) get(labelValue string) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[labelValue]
	if !ok {
		c = &child{labelValue: labelValue}
		switch f.typ {
		case typeCounter:
			c.counter = &Counter{}
		case typeGauge:
			c.gauge = &Gauge{}
		case typeHistogram:
			h := &Histogram{upper: append([]float64(nil), f.buckets...)}
			h.counts = make([]uint64, len(h.upper)+1)
			c.hist = h
		}
		f.children[labelValue] = c
	}
	return c
}

// Registry holds metric families by name. The zero value is not usable;
// call NewRegistry. A nil *Registry is accepted by every instrumentation
// site in the repo and disables recording.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup returns the family for name, creating it on first use.
// Re-registering an existing name with a different type, label key or
// bucket layout panics: metric names are a contract.
func (r *Registry) lookup(name, help string, typ metricType, labelKey string, buckets []float64) *family {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:     name,
			help:     help,
			typ:      typ,
			labelKey: labelKey,
			buckets:  append([]float64(nil), buckets...),
			children: map[string]*child{},
		}
		sort.Float64s(f.buckets)
		r.families[name] = f
		return f
	}
	if f.typ != typ || f.labelKey != labelKey || len(f.buckets) != len(buckets) {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", name))
	}
	return f
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, typeCounter, "", nil).get("").counter
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, typeGauge, "", nil).get("").gauge
}

// Histogram returns the fixed-bucket histogram registered under name.
// buckets are upper bounds; a +Inf overflow bucket is implicit. Pass
// DefBuckets when nothing domain-specific fits.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return r.lookup(name, help, typeHistogram, "", buckets).get("").hist
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// With returns the child counter for the label value.
func (v CounterVec) With(labelValue string) *Counter { return v.f.get(labelValue).counter }

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label value.
func (v GaugeVec) With(labelValue string) *Gauge { return v.f.get(labelValue).gauge }

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// With returns the child histogram for the label value.
func (v HistogramVec) With(labelValue string) *Histogram { return v.f.get(labelValue).hist }

// CounterVec returns the labelled counter family registered under name.
func (r *Registry) CounterVec(name, help, labelKey string) CounterVec {
	return CounterVec{r.lookup(name, help, typeCounter, labelKey, nil)}
}

// GaugeVec returns the labelled gauge family registered under name.
func (r *Registry) GaugeVec(name, help, labelKey string) GaugeVec {
	return GaugeVec{r.lookup(name, help, typeGauge, labelKey, nil)}
}

// InfoGauge registers a gauge carrying a fixed set of label pairs —
// the Prometheus *_info idiom (haccs_build_info{revision="…",
// go_version="…"} 1). Pairs render in the given order; the pair set is
// part of the family shape, so re-registering the name with different
// pairs panics like any other shape change.
func (r *Registry) InfoGauge(name, help string, pairs [][2]string) *Gauge {
	f := r.lookup(name, help, typeGauge, "", nil)
	f.mu.Lock()
	if f.pairs == nil {
		f.pairs = append([][2]string(nil), pairs...)
	} else if len(f.pairs) != len(pairs) {
		f.mu.Unlock()
		panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", name))
	} else {
		for i, p := range pairs {
			if f.pairs[i] != p {
				f.mu.Unlock()
				panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", name))
			}
		}
	}
	f.mu.Unlock()
	return f.get("").gauge
}

// HistogramVec returns the labelled histogram family registered under
// name.
func (r *Registry) HistogramVec(name, help, labelKey string, buckets []float64) HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return HistogramVec{r.lookup(name, help, typeHistogram, labelKey, buckets)}
}

// Sample is one exported time-series value in a Snapshot.
type Sample struct {
	Name       string
	LabelKey   string // "" when the metric is unlabelled
	LabelValue string
	// Pairs are the fixed label pairs of an info-style family (see
	// Registry.InfoGauge); nil everywhere else.
	Pairs [][2]string
	Type  string // "counter" | "gauge" | "histogram"
	Value float64
	Hist  *HistogramSnapshot // histograms only
}

// Snapshot returns every registered series in deterministic order
// (family name, then label value).
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var out []Sample
	for _, f := range fams {
		f.mu.Lock()
		values := make([]string, 0, len(f.children))
		for v := range f.children {
			values = append(values, v)
		}
		sort.Strings(values)
		kids := make([]*child, 0, len(values))
		for _, v := range values {
			kids = append(kids, f.children[v])
		}
		pairs := f.pairs
		f.mu.Unlock()
		for _, c := range kids {
			s := Sample{Name: f.name, LabelKey: f.labelKey, LabelValue: c.labelValue, Pairs: pairs, Type: f.typ.String()}
			switch f.typ {
			case typeCounter:
				s.Value = c.counter.Value()
			case typeGauge:
				s.Value = c.gauge.Value()
			case typeHistogram:
				snap := c.hist.Snapshot()
				s.Hist = &snap
				s.Value = snap.Sum
			}
			out = append(out, s)
		}
	}
	return out
}
