package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// ServeOption customizes the observability mux built by Handler/Serve.
type ServeOption func(mux *http.ServeMux)

// WithEndpoint mounts an extra handler on the observability mux — the
// hook higher layers (e.g. internal/introspect's /debug/selection) use
// without telemetry depending on them.
func WithEndpoint(path string, h http.Handler) ServeOption {
	return func(mux *http.ServeMux) { mux.Handle(path, h) }
}

// WithPprof mounts the net/http/pprof profiling endpoints under
// /debug/pprof/. Deliberately opt-in (profiling endpoints expose stack
// and heap contents); cmds gate it behind a -pprof flag.
func WithPprof() ServeOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	}
}

// Handler serves the observability endpoints:
//
//	/metrics      — Prometheus text exposition of reg
//	/debug/trace  — JSONL tail of the ring buffer (?n=100 limits it)
//	/debug/spans  — span-tree view of the ring's span events
//	               (?n limits the tail scanned, ?format=json for raw)
//
// Either argument may be nil; the corresponding endpoint then reports
// 404. Options mount additional endpoints (selection introspection,
// pprof).
func Handler(reg *Registry, ring *RingSink, opts ...ServeOption) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if reg == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		if ring == nil {
			http.NotFound(w, req)
			return
		}
		n, ok := tailParam(w, req)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range ring.Tail(n) {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, req *http.Request) {
		if ring == nil {
			http.NotFound(w, req)
			return
		}
		n, ok := tailParam(w, req)
		if !ok {
			return
		}
		var spans []Event
		for _, e := range ring.Tail(n) {
			if e.Kind == KindSpan {
				spans = append(spans, e)
			}
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(spans)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteSpanTree(w, spans)
	})
	for _, opt := range opts {
		opt(mux)
	}
	return mux
}

// tailParam parses the ?n= tail limit shared by the ring-backed
// endpoints, reporting 400 on malformed input.
func tailParam(w http.ResponseWriter, req *http.Request) (int, bool) {
	q := req.URL.Query().Get("n")
	if q == "" {
		return 0, true
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 0 {
		http.Error(w, "telemetry: bad n", http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

// WriteSpanTree renders completed-span events as indented per-trace
// trees, oldest trace first — the /debug/spans text view and the
// haccs-trace replay share it. Spans arrive in completion order;
// parents complete after their children, so the tree is rebuilt from
// the ID links. Orphans (parent outside the window) are promoted to
// roots rather than dropped.
func WriteSpanTree(w io.Writer, spans []Event) error {
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "no spans recorded")
		return err
	}
	byID := make(map[string]int, len(spans))
	for i, s := range spans {
		byID[s.SpanID] = i
	}
	children := make(map[string][]int, len(spans))
	var roots []int
	for i, s := range spans {
		if s.ParentID != "" {
			if _, ok := byID[s.ParentID]; ok {
				children[s.ParentID] = append(children[s.ParentID], i)
				continue
			}
		}
		roots = append(roots, i)
	}
	// Children render in start order where starts are comparable
	// (foreign spans sort last, preserving arrival order).
	order := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool {
			sa, sb := spans[idx[a]].StartSec, spans[idx[b]].StartSec
			if sa < 0 || sb < 0 {
				return false
			}
			return sa < sb
		})
	}
	order(roots)
	var render func(i, depth int) error
	render = func(i, depth int) error {
		s := spans[i]
		label := s.Span
		if s.Client >= 0 {
			label += fmt.Sprintf(" client=%d", s.Client)
		}
		if _, err := fmt.Fprintf(w, "%*s%-*s %9.3fms\n", 2*depth, "", 36-2*depth, label, s.WallSec*1000); err != nil {
			return err
		}
		kids := children[s.SpanID]
		order(kids)
		for _, k := range kids {
			if err := render(k, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		s := spans[r]
		if _, err := fmt.Fprintf(w, "trace %s round %d\n", s.TraceID, s.Round); err != nil {
			return err
		}
		if err := render(r, 1); err != nil {
			return err
		}
	}
	return nil
}

// HTTPServer is a running observability endpoint with a graceful
// shutdown handle.
type HTTPServer struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound listen address (useful with ":0").
func (s *HTTPServer) Addr() string { return s.addr }

// Close gracefully shuts the server down, waiting up to a second for
// in-flight scrapes.
func (s *HTTPServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Serve starts an HTTP server for Handler(reg, ring, opts...) on addr
// and returns once the listener is bound, so scrapes succeed
// immediately.
func Serve(addr string, reg *Registry, ring *RingSink, opts ...ServeOption) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, ring, opts...)}
	go func() { _ = srv.Serve(ln) }()
	return &HTTPServer{srv: srv, addr: ln.Addr().String()}, nil
}
