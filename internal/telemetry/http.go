package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Handler serves the observability endpoints:
//
//	/metrics      — Prometheus text exposition of reg
//	/debug/trace  — JSONL tail of the ring buffer (?n=100 limits it)
//
// Either argument may be nil; the corresponding endpoint then reports
// 404.
func Handler(reg *Registry, ring *RingSink) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if reg == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		if ring == nil {
			http.NotFound(w, req)
			return
		}
		n := 0
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "telemetry: bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range ring.Tail(n) {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})
	return mux
}

// HTTPServer is a running observability endpoint with a graceful
// shutdown handle.
type HTTPServer struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound listen address (useful with ":0").
func (s *HTTPServer) Addr() string { return s.addr }

// Close gracefully shuts the server down, waiting up to a second for
// in-flight scrapes.
func (s *HTTPServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Serve starts an HTTP server for Handler(reg, ring) on addr and
// returns once the listener is bound, so scrapes succeed immediately.
func Serve(addr string, reg *Registry, ring *RingSink) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, ring)}
	go func() { _ = srv.Serve(ln) }()
	return &HTTPServer{srv: srv, addr: ln.Addr().String()}, nil
}
