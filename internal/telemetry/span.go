package telemetry

import (
	"strconv"
	"sync/atomic"
	"time"
)

// Spans are the timed, nestable complement to the flat event trace: one
// span per round-lifecycle phase (availability → select → dispatch →
// per-client train → collect → aggregate → update), each carrying a
// trace/span/parent ID triple so a run can be reassembled into a tree —
// including across the flnet wire, where the coordinator's per-client
// train span context travels inside the TrainRequest and the client's
// local-train span ships back on the reply.
//
// The design constraint is the same as the rest of the package: a nil
// *SpanTracer is the documented "off" state and must cost nothing. Span
// is a value type, every constructor on a nil tracer returns the zero
// Span, and every method on the zero Span is a no-op, so the fully
// instrumented hot path allocates nothing when tracing is off (pinned
// by TestSpanNilTracerZeroAlloc and the tracked span_nil_tracer
// benchmark).

// spanIDs hands out process-unique span and trace IDs. The counter is
// offset by the process start time so two cooperating processes (a
// coordinator and its TCP clients) draw from ranges that do not collide
// in practice; IDs are opaque and never enter any deterministic
// computation.
var spanIDs atomic.Uint64

func init() {
	spanIDs.Store(uint64(time.Now().UnixNano()) << 16)
}

// NewSpanID returns a fresh process-unique span ID (never zero). The
// flnet client uses it to mint IDs for spans it ships back to the
// coordinator without owning a SpanTracer.
func NewSpanID() uint64 {
	for {
		if id := spanIDs.Add(1); id != 0 {
			return id
		}
	}
}

// FormatSpanID renders a span/trace ID the way span events carry it
// (lowercase hex, no padding).
func FormatSpanID(id uint64) string { return strconv.FormatUint(id, 16) }

// ParseSpanID inverts FormatSpanID; it returns 0 for empty or malformed
// input (0 is never a live ID).
func ParseSpanID(s string) uint64 {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return id
}

// SpanContext is the wire-propagable identity of a span: enough for a
// remote party to parent its own spans under it. The zero value means
// "no trace in progress".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Zero reports whether the context carries no trace.
func (sc SpanContext) Zero() bool { return sc.TraceID == 0 && sc.SpanID == 0 }

// Valid reports whether the context is well-formed: either fully zero
// (tracing off) or fully populated. A half-set context is a protocol
// error — flnet rejects it as an *EnvelopeError.
func (sc SpanContext) Valid() bool {
	return sc.Zero() || (sc.TraceID != 0 && sc.SpanID != 0)
}

// SpanBuckets cover span durations: round phases range from
// microsecond bookkeeping (availability masking) through multi-second
// dispatch waits at paper scale.
var SpanBuckets = []float64{1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60}

// SpanTracer creates and records spans. Completed spans are emitted as
// KindSpan events into the sink (so the JSONL flight recorder and the
// ring behind /debug/spans both see them) and their durations are
// observed into the haccs_span_seconds{span=<name>} histogram family
// when a registry is attached. A nil *SpanTracer disables spans at zero
// cost; all methods are safe on the nil receiver.
type SpanTracer struct {
	sink  Tracer
	reg   *Registry
	hist  HistogramVec
	start time.Time
}

// NewSpanTracer builds a tracer recording into sink (span events; may
// be nil) and reg (duration histograms; may be nil). When both are nil
// there is nothing to record into and the constructor returns nil — the
// documented "off" tracer.
func NewSpanTracer(sink Tracer, reg *Registry) *SpanTracer {
	if sink == nil && reg == nil {
		return nil
	}
	t := &SpanTracer{sink: sink, reg: reg, start: time.Now()}
	if reg != nil {
		t.hist = reg.HistogramVec("haccs_span_seconds",
			"Duration of one round-lifecycle span, labelled by span name.", "span", SpanBuckets)
	}
	return t
}

// Span is one timed operation in a trace tree. It is a small value:
// copying it is free, the zero value is the documented no-op span, and
// Ending it twice is harmless (the second End re-emits; don't).
type Span struct {
	tr     *SpanTracer
	name   string
	trace  uint64
	id     uint64
	parent uint64
	round  int
	client int
	start  time.Time
}

// Root opens a new trace with one root span (the per-round entry
// point). Returns the zero Span on a nil tracer.
func (t *SpanTracer) Root(name string, round int) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		tr:     t,
		name:   name,
		trace:  NewSpanID(),
		id:     NewSpanID(),
		round:  round,
		client: -1,
		start:  time.Now(),
	}
}

// FromContext opens a span parented under a remote context — the
// receiving side of wire propagation. A nil tracer or an empty/invalid
// context yields the zero Span.
func (t *SpanTracer) FromContext(sc SpanContext, name string, round, client int) Span {
	if t == nil || sc.Zero() || !sc.Valid() {
		return Span{}
	}
	return Span{
		tr:     t,
		name:   name,
		trace:  sc.TraceID,
		id:     NewSpanID(),
		parent: sc.SpanID,
		round:  round,
		client: client,
		start:  time.Now(),
	}
}

// Child opens a sub-span inheriting the trace, round and client of s.
func (s Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return Span{
		tr:     s.tr,
		name:   name,
		trace:  s.trace,
		id:     NewSpanID(),
		parent: s.id,
		round:  s.round,
		client: s.client,
		start:  time.Now(),
	}
}

// ChildClient is Child with the span attributed to one client — the
// per-client train spans under a round's dispatch span.
func (s Span) ChildClient(name string, client int) Span {
	c := s.Child(name)
	if c.tr != nil {
		c.client = client
	}
	return c
}

// Context returns the span's wire-propagable identity (zero for the
// zero Span).
func (s Span) Context() SpanContext {
	if s.tr == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.trace, SpanID: s.id}
}

// End completes the span: one KindSpan event into the sink and one
// duration observation into the haccs_span_seconds family. No-op on the
// zero Span.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	dur := time.Since(s.start).Seconds()
	if s.tr.reg != nil {
		s.tr.hist.With(s.name).Observe(dur)
	}
	if s.tr.sink != nil {
		s.tr.sink.Emit(SpanEnded(s.name, s.trace, s.id, s.parent, s.round, s.client,
			s.start.Sub(s.tr.start).Seconds(), dur))
	}
}

// EmitForeign records a span completed elsewhere (e.g. a client-side
// train span shipped back over the flnet wire) into the tracer's sink
// and histogram family. startSec < 0 marks the start offset as unknown
// — foreign clocks are not comparable to the tracer's.
func (t *SpanTracer) EmitForeign(name string, trace, span, parent uint64, round, client int, durSec float64) {
	if t == nil {
		return
	}
	if t.reg != nil {
		t.hist.With(name).Observe(durSec)
	}
	if t.sink != nil {
		t.sink.Emit(SpanEnded(name, trace, span, parent, round, client, -1, durSec))
	}
}
