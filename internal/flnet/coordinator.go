package flnet

import (
	"fmt"
	"time"

	"haccs/internal/checkpoint"
	"haccs/internal/fleet"
	"haccs/internal/nn"
	"haccs/internal/rounds"
	"haccs/internal/simnet"
	"haccs/internal/telemetry"
)

// CoordinatorConfig parameterizes the network-side round runtime. It
// mirrors rounds.Config; the coordinator adds only what is specific to
// the wire: per-round wall-clock telemetry and the registered-client
// roster.
type CoordinatorConfig struct {
	// ClientsPerRound is the selection budget k.
	ClientsPerRound int
	// Deadline is the virtual-time round deadline in seconds (see
	// rounds.Config.Deadline). The exchange with a straggler still
	// completes — the deadline governs whose update is aggregated and
	// how far the virtual clock advances, exactly as in simulation.
	// Sync-only: async mode bounds slow updates with Async.MaxStaleness.
	Deadline float64
	// Mode selects the round runtime driving the wire: synchronous
	// barrier rounds (the zero value) or FedBuff-style buffered
	// asynchronous aggregation (see rounds.Mode).
	Mode rounds.Mode
	// Async tunes the buffered asynchronous driver when Mode is
	// rounds.ModeAsync; ignored in sync mode.
	Async rounds.AsyncConfig
	// Dropout injects per-round unavailability (nil = no dropout).
	// Clients whose connections die are additionally excluded forever
	// by the driver's failure tracking.
	Dropout simnet.DropoutModel
	// Tracer receives the round-trace event stream (nil = off).
	Tracer telemetry.Tracer
	// Spans, when non-nil, times the round lifecycle as a span tree
	// (see rounds.Config.Spans) and additionally records each client's
	// own local-train span shipped back over the wire, parented under
	// the coordinator's per-client train span.
	Spans *telemetry.SpanTracer
	// Metrics, when non-nil, receives the driver's collectors plus the
	// coordinator's haccs_net_* series.
	Metrics *telemetry.Registry
	// OnSummary receives refreshed client summaries piggybacked on
	// training replies (TrainReply.UpdatedLabelCounts); wire it to the
	// HACCS scheduler's UpdateSummaries for §IV-C re-clustering.
	OnSummary func(clientID int, labelCounts []float64)
	// Fleet, when non-nil, is the per-client health registry fed one
	// observation per round; on the wire transport it additionally
	// receives each reporter's validated self-reported stats block. It
	// joins the checkpoint component set so resumed coordinators keep
	// their fleet history bit-identically.
	Fleet *fleet.Registry
	// Checkpoint, when non-nil, durably persists the coordinator's run
	// state (model, driver clock and dead mask, strategy) every
	// CheckpointEvery rounds, so a coordinator that dies mid-run can be
	// rebuilt over a fresh server — clients re-registering — and
	// continue the round sequence exactly where it stopped (see
	// Coordinator.Restore).
	Checkpoint *checkpoint.Store
	// CheckpointEvery is the snapshot cadence in rounds when Checkpoint
	// is set (<= 0 means every round).
	CheckpointEvery int
	// Arch stamps the model component of snapshots. It may be the zero
	// value when the coordinator does not know the model family; the
	// restore validation then reduces to the parameter count.
	Arch nn.Arch
}

// Coordinator drives federated rounds over registered flnet clients
// through the shared round runtime: the same selection, deadline,
// partial-aggregation and failure semantics as the in-process engine,
// with the gob protocol as the transport. Build it after AcceptClients
// has gathered the full roster.
type Coordinator struct {
	srv      *Server
	driver   rounds.Runner
	mode     rounds.Mode
	strategy rounds.Strategy
	arch     nn.Arch
	dropout  simnet.DropoutModel
	fleet    *fleet.Registry

	// saver persists snapshots on cadence (nil = off); startRound is
	// where the round sequence continues after Restore.
	saver      *checkpoint.Saver
	startRound int

	tracer telemetry.Tracer
	reg    *telemetry.Registry
}

// netTransport adapts the Server's registered sessions to the round
// driver. Parallelism is the roster size so every push in a round goes
// out concurrently — the network, not a worker pool, is the bottleneck.
type netTransport struct {
	proxies []rounds.Proxy
}

func (t netTransport) Proxies() []rounds.Proxy { return t.proxies }
func (t netTransport) Parallelism() int        { return len(t.proxies) }

// netProxy trains one remote client through the Server's single-client
// exchange. Train errors (disconnect, protocol violation) surface to
// the driver, which excludes the client from aggregation and marks it
// dead; the Server has already dropped the session.
type netProxy struct {
	srv     *Server
	id      int
	latency float64
	spans   *telemetry.SpanTracer
}

func (p *netProxy) Train(round, worker, slot int, params []float64, sc telemetry.SpanContext) (rounds.Result, error) {
	reply, err := p.srv.Train(p.id, round, params, sc)
	if err != nil {
		return rounds.Result{}, err
	}
	if ws := reply.TrainSpan; ws != nil {
		// Validated by checkReply; record it as a foreign span (the
		// client's clock is not comparable, so only the duration counts).
		p.spans.EmitForeign(ws.Name, ws.TraceID, ws.SpanID, ws.ParentID, round, p.id, ws.DurSec)
	}
	return rounds.Result{
		ClientID:   p.id,
		Params:     reply.Params,
		NumSamples: reply.NumSamples,
		Loss:       reply.Loss,
		Summary:    reply.UpdatedLabelCounts,
		Stats:      reply.Stats,
	}, nil
}

func (p *netProxy) Latency() float64 { return p.latency }

// NewCoordinator builds the round runtime over the server's registered
// clients. Registrations must form a dense ID space 0..n-1 (the
// driver's roster indexing); the strategy must already be initialized
// with the same roster. initial is the starting global parameter
// vector; the coordinator's driver takes ownership.
func NewCoordinator(srv *Server, cfg CoordinatorConfig, strategy rounds.Strategy, initial []float64) (*Coordinator, error) {
	regs := srv.Registrations()
	if len(regs) == 0 {
		return nil, fmt.Errorf("flnet: no registered clients")
	}
	proxies := make([]rounds.Proxy, len(regs))
	for _, r := range regs {
		if r.ClientID < 0 || r.ClientID >= len(regs) {
			return nil, fmt.Errorf("flnet: client ID %d outside dense range [0,%d)", r.ClientID, len(regs))
		}
		if proxies[r.ClientID] != nil {
			return nil, fmt.Errorf("flnet: duplicate client ID %d in roster", r.ClientID)
		}
		proxies[r.ClientID] = &netProxy{srv: srv, id: r.ClientID, latency: r.LatencyEstimate, spans: cfg.Spans}
	}
	c := &Coordinator{srv: srv, mode: cfg.Mode, strategy: strategy, arch: cfg.Arch, dropout: cfg.Dropout, fleet: cfg.Fleet, tracer: cfg.Tracer, reg: cfg.Metrics}
	rcfg := rounds.Config{
		ClientsPerRound: cfg.ClientsPerRound,
		Deadline:        cfg.Deadline,
		Dropout:         cfg.Dropout,
		Tracer:          cfg.Tracer,
		Spans:           cfg.Spans,
		Metrics:         cfg.Metrics,
		OnSummary:       cfg.OnSummary,
		Fleet:           cfg.Fleet,
	}
	// The coordinator receives user-supplied configuration, so it
	// validates up front and returns the typed rounds error instead of
	// letting the driver constructor panic.
	if cfg.Mode == rounds.ModeAsync {
		if err := rounds.ValidateAsync(rcfg, cfg.Async); err != nil {
			return nil, fmt.Errorf("flnet: %w", err)
		}
		c.driver = rounds.NewAsyncDriver(rcfg, cfg.Async, netTransport{proxies}, strategy, initial)
	} else {
		if err := rcfg.Validate(); err != nil {
			return nil, fmt.Errorf("flnet: %w", err)
		}
		c.driver = rounds.NewDriver(rcfg, netTransport{proxies}, strategy, initial)
	}
	c.saver = checkpoint.NewSaver(cfg.Checkpoint, cfg.CheckpointEvery, c.checkpointComponents(), cfg.Tracer, cfg.Spans, cfg.Metrics)
	return c, nil
}

// checkpointComponents lists the coordinator's stateful layers under
// the same component names the fl engine uses, so tooling can read
// either transport's snapshots.
func (c *Coordinator) checkpointComponents() []checkpoint.Component {
	driverName := "driver"
	if c.mode == rounds.ModeAsync {
		driverName = "driver_async"
	}
	comps := []checkpoint.Component{
		{Name: "model", S: checkpoint.Model{Arch: c.arch, Params: c.driver.Global, SetParams: c.driver.SetGlobal}},
		{Name: driverName, S: c.driver},
	}
	if s, ok := c.strategy.(checkpoint.Snapshotter); ok {
		comps = append(comps, checkpoint.Component{Name: "strategy", S: s})
	}
	if l, ok := c.strategy.(checkpoint.ComponentLister); ok {
		comps = append(comps, l.ExtraComponents()...)
	}
	if d, ok := c.dropout.(checkpoint.Snapshotter); ok {
		comps = append(comps, checkpoint.Component{Name: "dropout", S: d})
	}
	if c.fleet != nil {
		comps = append(comps, checkpoint.Component{Name: "fleet", S: c.fleet})
	}
	return comps
}

// Snapshot captures the coordinator's run state after roundsDone
// completed rounds, independent of any configured store.
func (c *Coordinator) Snapshot(roundsDone int) (*checkpoint.Snapshot, error) {
	return checkpoint.Capture(roundsDone, c.checkpointComponents())
}

// Restore replays a snapshot into a freshly built coordinator: same
// strategy (constructed and Init-ed with the same roster), same model
// dimensions, clients re-registered on the new server under their old
// dense IDs. NextRound then reports where the round sequence
// continues. Restart recipe: bring up a new Server, let the clients
// re-register, rebuild and Init the strategy, NewCoordinator, then
// Restore(store.LoadLatest()).
func (c *Coordinator) Restore(snap *checkpoint.Snapshot) error {
	if err := snap.Restore(c.checkpointComponents()); err != nil {
		return err
	}
	c.startRound = snap.Round
	return nil
}

// NextRound returns the round index to continue from: 0 on a fresh
// coordinator, the snapshot round after Restore.
func (c *Coordinator) NextRound() int { return c.startRound }

// RunRound executes one full round over the wire through the shared
// driver and reports the outcome (see rounds.Outcome for buffer
// lifetimes). On top of the driver's round-trace events it emits the
// coordinator-level NetRound event and haccs_net_* metrics.
func (c *Coordinator) RunRound(round int) rounds.Outcome {
	start := time.Now()
	out := c.driver.RunRound(round)
	wall := time.Since(start).Seconds()
	if c.tracer != nil {
		c.tracer.Emit(telemetry.NetRound(round, append([]int(nil), out.Selected...), wall))
	}
	if c.reg != nil {
		c.reg.Counter("haccs_net_rounds_total", "Coordinator rounds completed.").Inc()
		c.reg.Histogram("haccs_net_round_seconds", "Wall-clock duration of one coordinator round (push + all replies).", nil).Observe(wall)
	}
	if _, err := c.saver.MaybeSave(round + 1); err != nil {
		panic(fmt.Sprintf("flnet: checkpoint save after round %d: %v", round+1, err))
	}
	return out
}

// Global returns the driver-owned global parameter vector (read-only;
// overwritten by aggregation each round).
func (c *Coordinator) Global() []float64 { return c.driver.Global() }

// Clock returns the virtual time elapsed across the coordinated rounds.
func (c *Coordinator) Clock() float64 { return c.driver.Clock() }

// Dead reports whether a client's session failed in an earlier round.
func (c *Coordinator) Dead(id int) bool { return c.driver.Dead(id) }

// Runner exposes the underlying round runtime — callers that need
// mode-specific surfaces (the async driver's introspection state, for
// example) type-assert on the returned value.
func (c *Coordinator) Runner() rounds.Runner { return c.driver }
