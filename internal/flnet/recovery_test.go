package flnet

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"haccs/internal/checkpoint"
	"haccs/internal/selection"
	"haccs/internal/stats"
)

const (
	recoveryClients = 4
	recoveryK       = 2
	recoveryRounds  = 8
	recoveryCrashAt = 5 // coordinator dies after this many completed rounds
	recoverySeed    = 99
	recoveryDim     = 3
)

// recoveryCluster is startCluster without the client-error assertion:
// a coordinator crash kills the live connections, so the clients of
// the crashed leg exit with transport errors by design.
func recoveryCluster(t *testing.T, n int) (*Server, *sync.WaitGroup) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := &Client{
				Reg:     RegisterFromSummary(id, []float64{float64(id), 1}, nil, float64(id)+0.5, 50+10*id),
				Trainer: echoTrainer(id, float64(id+1)),
			}
			_, _ = c.Run(srv.Addr())
		}(id)
	}
	if _, err := srv.AcceptClients(n); err != nil {
		t.Fatalf("accept: %v", err)
	}
	return srv, &wg
}

// recoveryStrategy returns a fresh random strategy on the canonical
// seed, as each coordinator process (original and restarted) builds it.
func recoveryStrategy() *selection.Random {
	s := selection.NewRandom()
	s.Init(nil, stats.NewRNG(stats.DeriveSeed(recoverySeed, 1)))
	return s
}

func recoveryCoordinator(t *testing.T, srv *Server, store *checkpoint.Store) *Coordinator {
	t.Helper()
	coord, err := NewCoordinator(srv, CoordinatorConfig{
		ClientsPerRound: recoveryK,
		Checkpoint:      store,
		CheckpointEvery: 1,
	}, recoveryStrategy(), make([]float64, recoveryDim))
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// TestCoordinatorCrashRecovery is the wire-transport acceptance test:
// a coordinator checkpoints every round, dies after round 5, the
// newest snapshot is corrupted on disk, and a rebuilt coordinator —
// new server, clients re-registered, strategy rebuilt from scratch —
// falls back to the round-4 snapshot and finishes the run with the
// exact global parameters of a coordinator that never crashed.
func TestCoordinatorCrashRecovery(t *testing.T) {
	// Reference: one coordinator runs all rounds uninterrupted.
	srv, wg := recoveryCluster(t, recoveryClients)
	coord := recoveryCoordinator(t, srv, nil)
	for round := 0; round < recoveryRounds; round++ {
		coord.RunRound(round)
	}
	wantGlobal := append([]float64(nil), coord.Global()...)
	wantClock := coord.Clock()
	srv.Close()
	wg.Wait()

	// Leg 1: checkpoint every round, then crash after recoveryCrashAt.
	dir := t.TempDir()
	store, err := checkpoint.NewStore(dir, recoveryRounds+2)
	if err != nil {
		t.Fatal(err)
	}
	srv, wg = recoveryCluster(t, recoveryClients)
	coord = recoveryCoordinator(t, srv, store)
	for round := 0; round < recoveryCrashAt; round++ {
		coord.RunRound(round)
	}
	srv.Close() // the crash: live client connections die with the server
	wg.Wait()

	// Corrupt the newest snapshot so recovery must fall back one round.
	latest := filepath.Join(dir, fmt.Sprintf("snap-%08d.ckpt", recoveryCrashAt))
	raw, err := os.ReadFile(latest)
	if err != nil {
		t.Fatalf("read latest snapshot: %v", err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(latest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Leg 2: a new process. Fresh server, clients re-register under
	// their old IDs, fresh store handle over the same directory, fresh
	// strategy, then Restore from the newest snapshot that checks out.
	store2, err := checkpoint.NewStore(dir, recoveryRounds+2)
	if err != nil {
		t.Fatal(err)
	}
	srv, wg = recoveryCluster(t, recoveryClients)
	defer func() {
		srv.Close()
		wg.Wait()
	}()
	coord = recoveryCoordinator(t, srv, store2)
	snap, err := store2.LoadLatest()
	if err != nil {
		var corrupt *checkpoint.CorruptSnapshotError
		if errors.As(err, &corrupt) {
			t.Fatalf("LoadLatest did not skip the corrupt snapshot: %v", err)
		}
		t.Fatalf("LoadLatest: %v", err)
	}
	if snap.Round != recoveryCrashAt-1 {
		t.Fatalf("recovered snapshot round = %d, want fallback to %d", snap.Round, recoveryCrashAt-1)
	}
	if err := coord.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for round := coord.NextRound(); round < recoveryRounds; round++ {
		coord.RunRound(round)
	}

	if got, want := math.Float64bits(coord.Clock()), math.Float64bits(wantClock); got != want {
		t.Errorf("clock bits = %#x, want %#x (%v vs %v)", got, want, coord.Clock(), wantClock)
	}
	got := coord.Global()
	if len(got) != len(wantGlobal) {
		t.Fatalf("global has %d params, want %d", len(got), len(wantGlobal))
	}
	for i, v := range got {
		if math.Float64bits(v) != math.Float64bits(wantGlobal[i]) {
			t.Errorf("global[%d] = %v, want %v", i, v, wantGlobal[i])
		}
	}
}
