package flnet

import (
	"encoding/gob"
	"errors"
	"net"
	"testing"

	"haccs/internal/telemetry"
)

func TestEnvelopeCheck(t *testing.T) {
	reg := &Register{ClientID: 1}
	rep := &TrainReply{}
	cases := []struct {
		name string
		env  Envelope
		want EnvelopeErrorKind // "" = valid
	}{
		{"register only", Envelope{Register: reg}, ""},
		{"reply only", Envelope{Reply: rep}, ""},
		{"request only", Envelope{Request: &TrainRequest{}}, ""},
		{"shutdown only", Envelope{Shutdown: &Shutdown{}}, ""},
		{"empty", Envelope{}, ErrEmptyEnvelope},
		{"two fields", Envelope{Register: reg, Reply: rep}, ErrAmbiguousEnvelope},
		{"all fields", Envelope{Register: reg, Request: &TrainRequest{}, Reply: rep, Shutdown: &Shutdown{}}, ErrAmbiguousEnvelope},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.env.Check()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Check() = %v, want nil", err)
				}
				return
			}
			var ee *EnvelopeError
			if !errors.As(err, &ee) || ee.Kind != tc.want {
				t.Fatalf("Check() = %v, want kind %s", err, tc.want)
			}
		})
	}
}

func TestCheckReply(t *testing.T) {
	ok := &TrainReply{ClientID: 3, Round: 7}
	cases := []struct {
		name string
		env  Envelope
		want EnvelopeErrorKind // "" = valid
	}{
		{"valid", Envelope{Reply: ok}, ""},
		{"empty", Envelope{}, ErrEmptyEnvelope},
		{"ambiguous", Envelope{Reply: ok, Shutdown: &Shutdown{}}, ErrAmbiguousEnvelope},
		{"register instead of reply", Envelope{Register: &Register{ClientID: 3}}, ErrUnexpectedMessage},
		{"wrong round", Envelope{Reply: &TrainReply{ClientID: 3, Round: 6}}, ErrWrongRound},
		{"wrong client", Envelope{Reply: &TrainReply{ClientID: 4, Round: 7}}, ErrWrongClient},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reply, err := checkReply(&tc.env, 3, 7, telemetry.SpanContext{})
			if tc.want == "" {
				if err != nil || reply == nil {
					t.Fatalf("checkReply = (%v, %v), want the reply", reply, err)
				}
				return
			}
			var ee *EnvelopeError
			if !errors.As(err, &ee) || ee.Kind != tc.want {
				t.Fatalf("checkReply err = %v, want kind %s", err, tc.want)
			}
			if ee.ClientID != 3 || ee.Round != 7 {
				t.Fatalf("error context = client %d round %d, want 3/7", ee.ClientID, ee.Round)
			}
		})
	}
}

// rawSession opens a gob connection to the server without the Client
// state machine, so tests can speak protocol violations.
type rawSession struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func dialRaw(t *testing.T, addr string) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawSession{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (r *rawSession) register(t *testing.T, id int) {
	t.Helper()
	reg := RegisterFromSummary(id, []float64{1}, nil, 1, 10)
	if err := r.enc.Encode(Envelope{Register: &reg}); err != nil {
		t.Fatalf("register: %v", err)
	}
}

// expectRequest blocks for the next TrainRequest from the server.
func (r *rawSession) expectRequest(t *testing.T) *TrainRequest {
	t.Helper()
	var env Envelope
	if err := r.dec.Decode(&env); err != nil {
		t.Errorf("decode request: %v", err)
		return nil
	}
	if env.Request == nil {
		t.Errorf("expected TrainRequest, got %+v", env)
		return nil
	}
	return env.Request
}

func acceptAsync(srv *Server, n int) chan error {
	errc := make(chan error, 1)
	go func() {
		_, err := srv.AcceptClients(n)
		errc <- err
	}()
	return errc
}

func TestDuplicateRegisterRejected(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	errc := acceptAsync(srv, 2)
	dialRaw(t, srv.Addr()).register(t, 0)
	// Second connection claims the same ClientID.
	dialRaw(t, srv.Addr()).register(t, 0)
	var ee *EnvelopeError
	if err := <-errc; !errors.As(err, &ee) || ee.Kind != ErrDuplicateRegister || ee.ClientID != 0 {
		t.Fatalf("AcceptClients err = %v, want ErrDuplicateRegister for client 0", err)
	}
}

func TestMalformedRegistrationRejected(t *testing.T) {
	cases := []struct {
		name string
		env  Envelope
		want EnvelopeErrorKind
	}{
		{"empty envelope", Envelope{}, ErrEmptyEnvelope},
		{"ambiguous envelope", Envelope{Register: &Register{}, Shutdown: &Shutdown{}}, ErrAmbiguousEnvelope},
		{"reply instead of register", Envelope{Reply: &TrainReply{}}, ErrUnexpectedMessage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewServer("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			errc := acceptAsync(srv, 1)
			raw := dialRaw(t, srv.Addr())
			if err := raw.enc.Encode(tc.env); err != nil {
				t.Fatal(err)
			}
			var ee *EnvelopeError
			if err := <-errc; !errors.As(err, &ee) || ee.Kind != tc.want {
				t.Fatalf("AcceptClients err = %v, want kind %s", err, tc.want)
			}
		})
	}
}

// TestMisbehavingRepliesDropSession covers the wire forms of reply
// violations: each one must surface as a typed error from Train and
// drop the session so the next dispatch fails fast.
func TestMisbehavingRepliesDropSession(t *testing.T) {
	cases := []struct {
		name  string
		reply func(req *TrainRequest) Envelope
		want  EnvelopeErrorKind
	}{
		{"empty envelope", func(*TrainRequest) Envelope { return Envelope{} }, ErrEmptyEnvelope},
		{"ambiguous envelope", func(req *TrainRequest) Envelope {
			return Envelope{
				Reply:    &TrainReply{ClientID: 0, Round: req.Round},
				Shutdown: &Shutdown{},
			}
		}, ErrAmbiguousEnvelope},
		{"register instead of reply", func(*TrainRequest) Envelope {
			return Envelope{Register: &Register{ClientID: 0}}
		}, ErrUnexpectedMessage},
		{"wrong round", func(req *TrainRequest) Envelope {
			return Envelope{Reply: &TrainReply{ClientID: 0, Round: req.Round + 1}}
		}, ErrWrongRound},
		{"wrong client", func(req *TrainRequest) Envelope {
			return Envelope{Reply: &TrainReply{ClientID: 9, Round: req.Round}}
		}, ErrWrongClient},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewServer("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			errc := acceptAsync(srv, 1)
			raw := dialRaw(t, srv.Addr())
			raw.register(t, 0)
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				if req := raw.expectRequest(t); req != nil {
					_ = raw.enc.Encode(tc.reply(req))
				}
			}()
			_, err = srv.Train(0, 4, []float64{1}, telemetry.SpanContext{})
			<-done
			var ee *EnvelopeError
			if !errors.As(err, &ee) || ee.Kind != tc.want {
				t.Fatalf("Train err = %v, want kind %s", err, tc.want)
			}
			// The session is gone: the next dispatch fails fast.
			if _, err := srv.Train(0, 5, []float64{1}, telemetry.SpanContext{}); !errors.As(err, &ee) || ee.Kind != ErrNotRegistered {
				t.Fatalf("post-violation Train err = %v, want ErrNotRegistered", err)
			}
		})
	}
}

func TestEnvelopeErrorMessage(t *testing.T) {
	err := envelopeErr(ErrWrongRound, 3, 7, "reply for round 6")
	want := "flnet: wrong_round (client 3, round 7): reply for round 6"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}
