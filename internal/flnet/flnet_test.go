package flnet

import (
	"errors"
	"sync"
	"testing"

	"haccs/internal/telemetry"
)

// noTrace is the off span context every plain exchange in these tests
// sends.
var noTrace = telemetry.SpanContext{}

// echoTrainer returns the received params shifted by a constant, so the
// test can verify payload integrity end to end.
func echoTrainer(id int, shift float64) Trainer {
	return TrainerFunc(func(round int, params []float64) ([]float64, int, float64) {
		out := make([]float64, len(params))
		for i, v := range params {
			out[i] = v + shift
		}
		return out, 10 * (id + 1), float64(round)
	})
}

func startCluster(t *testing.T, n int) (*Server, []Register, *sync.WaitGroup) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := &Client{
				Reg:     RegisterFromSummary(id, []float64{float64(id), 1, 2}, nil, float64(id)+0.5, 100+id),
				Trainer: echoTrainer(id, float64(id)),
			}
			if _, err := c.Run(srv.Addr()); err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}(id)
	}
	regs, err := srv.AcceptClients(n)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	return srv, regs, &wg
}

func TestRegistrationCarriesSummary(t *testing.T) {
	srv, regs, wg := startCluster(t, 3)
	if len(regs) != 3 {
		t.Fatalf("got %d registrations", len(regs))
	}
	seen := map[int]bool{}
	for _, r := range regs {
		seen[r.ClientID] = true
		if len(r.LabelCounts) != 3 || r.LabelCounts[0] != float64(r.ClientID) {
			t.Errorf("client %d label counts %v", r.ClientID, r.LabelCounts)
		}
		if r.NumSamples != 100+r.ClientID {
			t.Errorf("client %d samples %d", r.ClientID, r.NumSamples)
		}
		if r.SummaryKind != 0 {
			t.Errorf("client %d kind %d", r.ClientID, r.SummaryKind)
		}
		h := r.LabelHistogram()
		if h.Bins() != 3 {
			t.Errorf("histogram reconstruction broken")
		}
	}
	if len(seen) != 3 {
		t.Error("duplicate client IDs")
	}
	if len(srv.Registrations()) != 3 {
		t.Error("Registrations snapshot wrong")
	}
	srv.Close()
	wg.Wait()
}

func TestRoundTripTraining(t *testing.T) {
	srv, _, wg := startCluster(t, 4)
	params := []float64{1, 2, 3}
	for _, id := range []int{1, 3} {
		rep, err := srv.Train(id, 7, params, noTrace)
		if err != nil {
			t.Fatalf("train client %d: %v", id, err)
		}
		if rep.Round != 7 {
			t.Errorf("reply round %d", rep.Round)
		}
		if rep.Loss != 7 {
			t.Errorf("reply loss %v", rep.Loss)
		}
		for i, v := range rep.Params {
			if v != params[i]+float64(rep.ClientID) {
				t.Errorf("client %d payload corrupted: %v", rep.ClientID, rep.Params)
			}
		}
		if rep.NumSamples != 10*(rep.ClientID+1) {
			t.Errorf("client %d samples %d", rep.ClientID, rep.NumSamples)
		}
	}
	srv.Close()
	wg.Wait()
}

func TestMultipleRoundsSameClients(t *testing.T) {
	srv, _, wg := startCluster(t, 2)
	for round := 0; round < 5; round++ {
		for id := 0; id < 2; id++ {
			rep, err := srv.Train(id, round, []float64{float64(round)}, noTrace)
			if err != nil {
				t.Fatalf("round %d client %d: %v", round, id, err)
			}
			if rep.Params[0] != float64(round)+float64(rep.ClientID) {
				t.Fatalf("round %d corrupt payload", round)
			}
		}
	}
	srv.Close()
	wg.Wait()
}

func TestTrainUnknownClient(t *testing.T) {
	srv, _, wg := startCluster(t, 1)
	_, err := srv.Train(99, 0, []float64{1}, noTrace)
	var ee *EnvelopeError
	if !errors.As(err, &ee) || ee.Kind != ErrNotRegistered {
		t.Errorf("err = %v, want ErrNotRegistered", err)
	}
	srv.Close()
	wg.Wait()
}

func TestClientShutdownCleanly(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var rounds int
	var runErr error
	go func() {
		defer close(done)
		c := &Client{
			Reg:     RegisterFromSummary(0, []float64{1}, nil, 1, 10),
			Trainer: echoTrainer(0, 0),
		}
		rounds, runErr = c.Run(srv.Addr())
	}()
	if _, err := srv.AcceptClients(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Train(0, 0, []float64{5}, noTrace); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	<-done
	if runErr != nil {
		t.Errorf("client exit error: %v", runErr)
	}
	if rounds != 1 {
		t.Errorf("client served %d rounds", rounds)
	}
}

func TestDialFailure(t *testing.T) {
	c := &Client{Reg: Register{}, Trainer: echoTrainer(0, 0)}
	if _, err := c.Run("127.0.0.1:1"); err == nil {
		t.Error("expected dial error")
	}
}

func TestRegisterFromSummaryPXY(t *testing.T) {
	fc := [][]float64{{1, 2}, nil, {3, 4}}
	r := RegisterFromSummary(5, nil, fc, 2.5, 50)
	if r.SummaryKind != 1 {
		t.Errorf("kind = %d", r.SummaryKind)
	}
	if r.LatencyEstimate != 2.5 || r.NumSamples != 50 {
		t.Error("metadata lost")
	}
	if len(r.FeatureCounts) != 3 || r.FeatureCounts[1] != nil {
		t.Error("feature counts mangled")
	}
}

func TestSummaryRefreshPiggyback(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := &Client{
			Reg:     RegisterFromSummary(0, []float64{10, 0}, nil, 1, 10),
			Trainer: echoTrainer(0, 0),
			SummaryRefresh: func(round int) []float64 {
				if round == 2 {
					// Distribution shifted at round 2.
					return []float64{0, 10}
				}
				return nil
			},
		}
		if _, err := c.Run(srv.Addr()); err != nil {
			t.Errorf("client: %v", err)
		}
	}()
	if _, err := srv.AcceptClients(1); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		rep, err := srv.Train(0, round, []float64{1}, noTrace)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.UpdatedLabelCounts
		if round == 2 {
			if len(got) != 2 || got[1] != 10 {
				t.Errorf("round 2 refresh missing: %v", got)
			}
		} else if got != nil {
			t.Errorf("round %d unexpected refresh %v", round, got)
		}
	}
	srv.Close()
	<-done
}
