package flnet

import (
	"reflect"
	"testing"
)

// pickStrategy selects a scripted ID list each round, filtered by
// availability (so clients the driver marked dead drop out instead of
// tripping the selection validation).
type pickStrategy struct {
	sel     [][]int
	updates []pickUpdate
}

type pickUpdate struct {
	round    int
	selected []int
	losses   []float64
}

func (s *pickStrategy) Select(round int, available []bool, k int) []int {
	if round >= len(s.sel) {
		return nil
	}
	var out []int
	for _, id := range s.sel[round] {
		if available[id] {
			out = append(out, id)
		}
	}
	return out
}

func (s *pickStrategy) Update(round int, selected []int, losses []float64) {
	s.updates = append(s.updates, pickUpdate{
		round:    round,
		selected: append([]int(nil), selected...),
		losses:   append([]float64(nil), losses...),
	})
}

func TestCoordinatorRoundOverTCP(t *testing.T) {
	srv, _, wg := startCluster(t, 3)
	strat := &pickStrategy{sel: [][]int{{0, 1, 2}}}
	coord, err := NewCoordinator(srv, CoordinatorConfig{ClientsPerRound: 3}, strat, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	out := coord.RunRound(0)
	if !out.Aggregated || !reflect.DeepEqual(out.Reporters, []int{0, 1, 2}) {
		t.Fatalf("outcome = %+v, want all three reporting", out)
	}
	// echoTrainer shifts params by the client ID with 10*(id+1) samples:
	// FedAvg = (10*0 + 20*1 + 30*2) / 60 = 4/3 per coordinate.
	want := 4.0 / 3.0
	for i, v := range coord.Global() {
		if v != want {
			t.Fatalf("global[%d] = %v, want %v", i, v, want)
		}
	}
	// startCluster registers latency id+0.5; slowest selected is 2.5.
	if coord.Clock() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", coord.Clock())
	}
	srv.Close()
	wg.Wait()
}

func TestCoordinatorDeadlineCutsStragglerOverTCP(t *testing.T) {
	srv, _, wg := startCluster(t, 3)
	strat := &pickStrategy{sel: [][]int{{0, 1, 2}}}
	// Registered latencies are 0.5, 1.5, 2.5: a deadline of 2 cuts
	// client 2 even though its TCP exchange completes.
	coord, err := NewCoordinator(srv, CoordinatorConfig{ClientsPerRound: 3, Deadline: 2}, strat, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	out := coord.RunRound(0)
	if !reflect.DeepEqual(out.Reporters, []int{0, 1}) || !reflect.DeepEqual(out.Cut, []int{2}) {
		t.Fatalf("reporters = %v cut = %v, want [0 1] / [2]", out.Reporters, out.Cut)
	}
	// Renormalized over reporters: (10*0 + 20*1) / 30 = 2/3.
	want := 2.0 / 3.0
	for i, v := range coord.Global() {
		if v != want {
			t.Fatalf("global[%d] = %v, want %v (renormalized over reporters)", i, v, want)
		}
	}
	if out.RoundVirtual != 2 || coord.Clock() != 2 {
		t.Fatalf("roundVirtual = %v clock = %v, want the deadline 2", out.RoundVirtual, coord.Clock())
	}
	// Update sees reporters only, in selection order.
	if len(strat.updates) != 1 || !reflect.DeepEqual(strat.updates[0].selected, []int{0, 1}) {
		t.Fatalf("Update calls = %+v, want one call with [0 1]", strat.updates)
	}
	if !reflect.DeepEqual(strat.updates[0].losses, []float64{0, 0}) {
		t.Fatalf("losses = %v, want reporters' round-0 losses", strat.updates[0].losses)
	}
	srv.Close()
	wg.Wait()
}

// TestClientDeathMidRound kills a client's connection while its
// TrainRequest is in flight: the coordinator must aggregate the
// survivors, mark the dead client failed, and keep running rounds
// without it.
func TestClientDeathMidRound(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := acceptAsync(srv, 3)
	// Client 0 is the killer: it registers, then slams the connection
	// shut on the first TrainRequest instead of replying.
	killer := dialRaw(t, srv.Addr())
	killer.register(t, 0)
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		var env Envelope
		_ = killer.dec.Decode(&env)
		killer.conn.Close()
	}()
	// Clients 1 and 2 behave.
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		for id := 1; id <= 2; id++ {
			go func(id int) {
				c := &Client{
					Reg:     RegisterFromSummary(id, []float64{1}, nil, float64(id), 10),
					Trainer: echoTrainer(id, float64(id)),
				}
				_, _ = c.Run(srv.Addr())
			}(id)
		}
	}()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	<-clientDone

	strat := &pickStrategy{sel: [][]int{{0, 1, 2}, {0, 1, 2}}}
	coord, err := NewCoordinator(srv, CoordinatorConfig{ClientsPerRound: 3}, strat, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}

	out := coord.RunRound(0)
	<-killed
	if !reflect.DeepEqual(out.Failed, []int{0}) {
		t.Fatalf("failed = %v, want [0]", out.Failed)
	}
	if !reflect.DeepEqual(out.Reporters, []int{1, 2}) || !out.Aggregated {
		t.Fatalf("reporters = %v aggregated = %v, want survivors [1 2]", out.Reporters, out.Aggregated)
	}
	// FedAvg over survivors: (20*1 + 30*2) / 50 = 1.6.
	for i, v := range coord.Global() {
		if v != 1.6 {
			t.Fatalf("global[%d] = %v, want 1.6", i, v)
		}
	}
	if !coord.Dead(0) {
		t.Fatal("client 0 not marked dead")
	}

	// The next round proceeds without the dead client — no wedge, no
	// panic, strategy sees it unavailable.
	out = coord.RunRound(1)
	if !reflect.DeepEqual(out.Selected, []int{1, 2}) || len(out.Failed) != 0 {
		t.Fatalf("round 1 outcome = %+v, want clean [1 2] round", out)
	}
	srv.Close()
}

func TestCoordinatorSummaryForwarding(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := &Client{
			Reg:     RegisterFromSummary(0, []float64{10, 0}, nil, 1, 10),
			Trainer: echoTrainer(0, 0),
			SummaryRefresh: func(round int) []float64 {
				if round == 1 {
					return []float64{0, 10}
				}
				return nil
			},
		}
		if _, err := c.Run(srv.Addr()); err != nil {
			t.Errorf("client: %v", err)
		}
	}()
	if _, err := srv.AcceptClients(1); err != nil {
		t.Fatal(err)
	}
	var got [][]float64
	strat := &pickStrategy{sel: [][]int{{0}, {0}, {0}}}
	coord, err := NewCoordinator(srv, CoordinatorConfig{
		ClientsPerRound: 1,
		OnSummary: func(id int, counts []float64) {
			if id != 0 {
				t.Errorf("summary from client %d", id)
			}
			got = append(got, counts)
		},
	}, strat, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		coord.RunRound(round)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], []float64{0, 10}) {
		t.Fatalf("forwarded summaries = %v, want the round-1 refresh only", got)
	}
	srv.Close()
	<-done
}

func TestNewCoordinatorRejectsSparseIDs(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	errc := acceptAsync(srv, 1)
	dialRaw(t, srv.Addr()).register(t, 7) // only client, ID outside [0,1)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(srv, CoordinatorConfig{ClientsPerRound: 1}, &pickStrategy{}, []float64{0}); err == nil {
		t.Fatal("expected dense-ID error")
	}
}
