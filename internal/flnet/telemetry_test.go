package flnet

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"haccs/internal/telemetry"
)

// TestCoordinatorTelemetryEndpoint runs rounds against an instrumented
// coordinator and scrapes the mounted /metrics and /debug/trace
// endpoints.
func TestCoordinatorTelemetryEndpoint(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRingSink(64)
	addr, err := srv.EnableTelemetry(reg, ring, ring, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		c := &Client{
			Reg:     RegisterFromSummary(0, []float64{1, 2}, nil, 1, 10),
			Trainer: echoTrainer(0, 0),
		}
		if _, err := c.Run(srv.Addr()); err != nil {
			t.Errorf("client: %v", err)
		}
	}()
	if _, err := srv.AcceptClients(1); err != nil {
		t.Fatal(err)
	}
	strat := &pickStrategy{sel: [][]int{{0}, {0}, {0}}}
	coord, err := NewCoordinator(srv, CoordinatorConfig{
		ClientsPerRound: 1,
		Tracer:          ring,
		Metrics:         reg,
	}, strat, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		coord.RunRound(round)
	}

	body := httpGet(t, addr, "/metrics")
	for _, want := range []string{
		"haccs_net_rounds_total 3",
		"haccs_net_registered_clients 1",
		"haccs_net_round_seconds_count 3",
		// The shared round driver's collectors flow into the same
		// registry as the coordinator's net series.
		"haccs_rounds_total 3",
		"haccs_clients_selected_total 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	trace := httpGet(t, addr, "/debug/trace")
	events, err := telemetry.ReadJSONL(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	var rounds []int
	for _, e := range events {
		if e.Kind == telemetry.KindNetRound {
			rounds = append(rounds, e.Round)
		}
	}
	if len(rounds) != 3 || rounds[0] != 0 || rounds[2] != 2 {
		t.Errorf("net_round trail = %v", rounds)
	}

	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	<-done
	if got := reg.Gauge("haccs_net_registered_clients", "").Value(); got != 0 {
		t.Errorf("registered gauge after shutdown = %v, want 0", got)
	}
}

func httpGet(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestShutdownLeavesNoGoroutines is the graceful-shutdown audit: a
// full coordinator lifecycle — telemetry endpoint, clients, rounds,
// shutdown — must return the process to its baseline goroutine count
// (goleak-style manual counting; the runtime needs a few scheduler
// ticks to reap exited goroutines, hence the retry loop).
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	for iter := 0; iter < 3; iter++ {
		srv, regs, wg := startCluster(t, 4)
		if len(regs) != 4 {
			t.Fatalf("got %d registrations", len(regs))
		}
		reg := telemetry.NewRegistry()
		ring := telemetry.NewRingSink(16)
		if _, err := srv.EnableTelemetry(reg, ring, ring, "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		coord, err := NewCoordinator(srv, CoordinatorConfig{
			ClientsPerRound: 4,
			Tracer:          ring,
			Metrics:         reg,
		}, &pickStrategy{sel: [][]int{{0, 1, 2, 3}}}, []float64{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if out := coord.RunRound(0); !out.Aggregated {
			t.Fatal("round did not aggregate")
		}
		if err := srv.Shutdown(); err != nil {
			t.Fatal(err)
		}
		// Shutdown must be idempotent.
		if err := srv.Shutdown(); err != nil {
			t.Errorf("second shutdown: %v", err)
		}
		wg.Wait()
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
}
