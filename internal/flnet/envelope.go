package flnet

import (
	"fmt"
	"math"

	"haccs/internal/fleet"
	"haccs/internal/telemetry"
)

// EnvelopeErrorKind classifies a protocol violation.
type EnvelopeErrorKind string

const (
	// ErrEmptyEnvelope: no field of the union was set.
	ErrEmptyEnvelope EnvelopeErrorKind = "empty_envelope"
	// ErrAmbiguousEnvelope: more than one field of the union was set.
	ErrAmbiguousEnvelope EnvelopeErrorKind = "ambiguous_envelope"
	// ErrDuplicateRegister: a second Register arrived for a ClientID that
	// already has a live session.
	ErrDuplicateRegister EnvelopeErrorKind = "duplicate_register"
	// ErrUnexpectedMessage: a well-formed envelope carried the wrong
	// message type for the protocol state (e.g. a Register where a Reply
	// was due).
	ErrUnexpectedMessage EnvelopeErrorKind = "unexpected_message"
	// ErrWrongRound: a TrainReply for a different round than the one in
	// flight.
	ErrWrongRound EnvelopeErrorKind = "wrong_round"
	// ErrWrongClient: a TrainReply claiming a different ClientID than the
	// session it arrived on.
	ErrWrongClient EnvelopeErrorKind = "wrong_client"
	// ErrNotRegistered: a training dispatch targeted a client with no
	// live session (never registered, or dropped after an earlier error).
	ErrNotRegistered EnvelopeErrorKind = "not_registered"
	// ErrBadTraceContext: a half-set span context on a TrainRequest, or
	// a TrainReply span that is unsolicited, malformed, or belongs to a
	// different trace than the request carried.
	ErrBadTraceContext EnvelopeErrorKind = "bad_trace_context"
	// ErrBadClientStats: a TrainReply stats block violating the wire
	// contract — non-finite or negative wall time, non-positive sample
	// count, non-finite loss, or negative epochs.
	ErrBadClientStats EnvelopeErrorKind = "bad_client_stats"
)

// EnvelopeError is the typed error for every protocol violation: a
// malformed envelope, an out-of-sequence message, or a reply that does
// not match the request in flight. The session that produced it is
// dropped; the round runtime then treats the client as failed rather
// than wedging the round.
type EnvelopeError struct {
	Kind EnvelopeErrorKind
	// ClientID is the offending session's client (-1 when unknown, e.g.
	// a malformed registration).
	ClientID int
	// Round is the round in flight (-1 outside a round).
	Round int
	// Detail carries human-readable context.
	Detail string
}

func (e *EnvelopeError) Error() string {
	msg := fmt.Sprintf("flnet: %s", e.Kind)
	if e.ClientID >= 0 {
		msg += fmt.Sprintf(" (client %d", e.ClientID)
		if e.Round >= 0 {
			msg += fmt.Sprintf(", round %d", e.Round)
		}
		msg += ")"
	} else if e.Round >= 0 {
		msg += fmt.Sprintf(" (round %d)", e.Round)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// envelopeErr builds an EnvelopeError; clientID/round use -1 for "not
// applicable".
func envelopeErr(kind EnvelopeErrorKind, clientID, round int, detail string) *EnvelopeError {
	return &EnvelopeError{Kind: kind, ClientID: clientID, Round: round, Detail: detail}
}

// Check validates the union invariant: exactly one field set. It does
// not judge whether that message type is expected — that is protocol
// state the receiving loop owns.
func (env *Envelope) Check() error {
	n := 0
	if env.Register != nil {
		n++
	}
	if env.Request != nil {
		n++
	}
	if env.Reply != nil {
		n++
	}
	if env.Shutdown != nil {
		n++
	}
	switch n {
	case 1:
		return nil
	case 0:
		return envelopeErr(ErrEmptyEnvelope, -1, -1, "no message set")
	default:
		return envelopeErr(ErrAmbiguousEnvelope, -1, -1, fmt.Sprintf("%d messages set", n))
	}
}

// checkReply validates a decoded envelope as the reply to a
// TrainRequest sent to clientID for round carrying span context sc.
func checkReply(env *Envelope, clientID, round int, sc telemetry.SpanContext) (*TrainReply, error) {
	if err := env.Check(); err != nil {
		ee := err.(*EnvelopeError)
		ee.ClientID, ee.Round = clientID, round
		return nil, ee
	}
	if env.Reply == nil {
		return nil, envelopeErr(ErrUnexpectedMessage, clientID, round,
			"expected TrainReply")
	}
	if env.Reply.Round != round {
		return nil, envelopeErr(ErrWrongRound, clientID, round,
			fmt.Sprintf("reply for round %d", env.Reply.Round))
	}
	if env.Reply.ClientID != clientID {
		return nil, envelopeErr(ErrWrongClient, clientID, round,
			fmt.Sprintf("reply claims client %d", env.Reply.ClientID))
	}
	if err := checkWireSpan(env.Reply.TrainSpan, clientID, round, sc); err != nil {
		return nil, err
	}
	if err := checkClientStats(env.Reply.Stats, clientID, round); err != nil {
		return nil, err
	}
	return env.Reply, nil
}

// checkWireSpan validates a reply's piggybacked span against the span
// context the request carried. A nil span is always fine (span shipping
// is optional); a present one must have been solicited, belong to the
// request's trace, parent under the request's span, and carry a sane
// measurement — anything else is a protocol violation that drops the
// session, so a misbehaving client cannot corrupt the coordinator's
// trace tree.
func checkWireSpan(ws *WireSpan, clientID, round int, sc telemetry.SpanContext) error {
	if ws == nil {
		return nil
	}
	if sc.Zero() {
		return envelopeErr(ErrBadTraceContext, clientID, round,
			"unsolicited span on reply (request carried no trace)")
	}
	if ws.SpanID == 0 {
		return envelopeErr(ErrBadTraceContext, clientID, round,
			"reply span has zero span ID")
	}
	if ws.TraceID != sc.TraceID {
		return envelopeErr(ErrBadTraceContext, clientID, round,
			fmt.Sprintf("reply span trace %x does not match request trace %x", ws.TraceID, sc.TraceID))
	}
	if ws.ParentID != sc.SpanID {
		return envelopeErr(ErrBadTraceContext, clientID, round,
			fmt.Sprintf("reply span parent %x does not match request span %x", ws.ParentID, sc.SpanID))
	}
	if math.IsNaN(ws.DurSec) || math.IsInf(ws.DurSec, 0) || ws.DurSec < 0 {
		return envelopeErr(ErrBadTraceContext, clientID, round,
			fmt.Sprintf("reply span duration %v is not a finite non-negative number", ws.DurSec))
	}
	return nil
}

// checkClientStats validates a reply's self-reported stats block the
// same way checkWireSpan validates the piggybacked span: a nil block is
// always fine (stats are optional), a present one must carry sane
// measurements — anything else is a protocol violation that drops the
// session, so a misbehaving client cannot poison the coordinator's
// fleet health registry.
func checkClientStats(st *fleet.ClientStats, clientID, round int) error {
	if st == nil {
		return nil
	}
	if math.IsNaN(st.TrainWallSec) || math.IsInf(st.TrainWallSec, 0) || st.TrainWallSec < 0 {
		return envelopeErr(ErrBadClientStats, clientID, round,
			fmt.Sprintf("stats wall time %v is not a finite non-negative number", st.TrainWallSec))
	}
	if st.Samples <= 0 {
		return envelopeErr(ErrBadClientStats, clientID, round,
			fmt.Sprintf("stats sample count %d is not positive", st.Samples))
	}
	if math.IsNaN(st.Loss) || math.IsInf(st.Loss, 0) {
		return envelopeErr(ErrBadClientStats, clientID, round,
			fmt.Sprintf("stats loss %v is not finite", st.Loss))
	}
	if st.Epochs < 0 {
		return envelopeErr(ErrBadClientStats, clientID, round,
			fmt.Sprintf("stats epochs %d is negative", st.Epochs))
	}
	return nil
}
