package flnet

import (
	"errors"
	"math"
	"testing"

	"haccs/internal/fleet"
	"haccs/internal/telemetry"
)

func TestCheckClientStats(t *testing.T) {
	cases := []struct {
		name string
		st   *fleet.ClientStats
		ok   bool
	}{
		{"nil", nil, true},
		{"valid", &fleet.ClientStats{TrainWallSec: 0.25, Samples: 10, Loss: 1.2, Epochs: 1}, true},
		{"zero wall", &fleet.ClientStats{Samples: 1}, true},
		{"nan wall", &fleet.ClientStats{TrainWallSec: math.NaN(), Samples: 1}, false},
		{"inf wall", &fleet.ClientStats{TrainWallSec: math.Inf(1), Samples: 1}, false},
		{"negative wall", &fleet.ClientStats{TrainWallSec: -0.1, Samples: 1}, false},
		{"zero samples", &fleet.ClientStats{TrainWallSec: 1}, false},
		{"negative samples", &fleet.ClientStats{TrainWallSec: 1, Samples: -3}, false},
		{"nan loss", &fleet.ClientStats{TrainWallSec: 1, Samples: 1, Loss: math.NaN()}, false},
		{"inf loss", &fleet.ClientStats{TrainWallSec: 1, Samples: 1, Loss: math.Inf(-1)}, false},
		{"negative epochs", &fleet.ClientStats{TrainWallSec: 1, Samples: 1, Epochs: -1}, false},
	}
	for _, c := range cases {
		err := checkClientStats(c.st, 3, 7)
		if c.ok {
			if err != nil {
				t.Errorf("%s: err = %v, want nil", c.name, err)
			}
			continue
		}
		var ee *EnvelopeError
		if !errors.As(err, &ee) || ee.Kind != ErrBadClientStats || ee.ClientID != 3 || ee.Round != 7 {
			t.Errorf("%s: err = %v, want ErrBadClientStats for client 3 round 7", c.name, err)
		}
	}
}

// TestMalformedStatsDropSession mirrors TestMisbehavingSpanDropsSession:
// a stats block that violates the wire contract is a protocol violation
// that fails the Train with a typed error and drops the session.
func TestMalformedStatsDropSession(t *testing.T) {
	cases := []struct {
		name  string
		stats *fleet.ClientStats
	}{
		{"nan wall", &fleet.ClientStats{TrainWallSec: math.NaN(), Samples: 1}},
		{"zero samples", &fleet.ClientStats{TrainWallSec: 1}},
		{"inf loss", &fleet.ClientStats{TrainWallSec: 1, Samples: 1, Loss: math.Inf(1)}},
		{"negative epochs", &fleet.ClientStats{TrainWallSec: 1, Samples: 1, Epochs: -2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			srv, err := NewServer("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			errc := acceptAsync(srv, 1)
			raw := dialRaw(t, srv.Addr())
			raw.register(t, 0)
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				if req := raw.expectRequest(t); req != nil {
					_ = raw.enc.Encode(Envelope{Reply: &TrainReply{
						ClientID: 0,
						Round:    req.Round,
						Stats:    c.stats,
					}})
				}
			}()
			_, err = srv.Train(0, 4, []float64{1}, telemetry.SpanContext{})
			<-done
			var ee *EnvelopeError
			if !errors.As(err, &ee) || ee.Kind != ErrBadClientStats {
				t.Fatalf("Train err = %v, want ErrBadClientStats", err)
			}
			if _, err := srv.Train(0, 5, []float64{1}, telemetry.SpanContext{}); !errors.As(err, &ee) || ee.Kind != ErrNotRegistered {
				t.Fatalf("post-violation Train err = %v, want ErrNotRegistered", err)
			}
		})
	}
}

// TestClientStatsFeedFleetRegistryOverTCP runs a real coordinator round
// and checks that the clients' self-reported stats blocks land in the
// fleet registry: wire wall time (not the registered virtual latency)
// feeds the latency EWMA, and the sample counters accumulate.
func TestClientStatsFeedFleetRegistryOverTCP(t *testing.T) {
	srv, _, wg := startCluster(t, 3)
	strat := &pickStrategy{sel: [][]int{{0, 1, 2}, {0, 1, 2}}}
	reg := fleet.NewRegistry(3, fleet.Options{})
	coord, err := NewCoordinator(srv, CoordinatorConfig{ClientsPerRound: 3, Fleet: reg}, strat, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	coord.RunRound(0)
	coord.RunRound(1)
	st := reg.State()
	if st.Rounds != 2 || st.TotalSelected != 6 {
		t.Fatalf("registry header = %+v", st)
	}
	for id, c := range st.Clients {
		if c.Selected != 2 || c.Reported != 2 {
			t.Errorf("client %d counters = %+v", id, c)
		}
		// echoTrainer reports 10*(id+1) samples per round.
		if want := 2 * 10 * (id + 1); c.Samples != want {
			t.Errorf("client %d samples = %d, want %d", id, c.Samples, want)
		}
		// The EWMA is the client-measured wall time of a local echo:
		// tiny but finite, and nothing like the registered id+0.5
		// virtual latency.
		if c.LatencyEWMA < 0 || c.LatencyEWMA > 0.25 || math.IsNaN(c.LatencyEWMA) {
			t.Errorf("client %d latency EWMA = %v, want small wall time", id, c.LatencyEWMA)
		}
	}
	srv.Close()
	wg.Wait()
}
