package flnet

import (
	"net"
	"testing"
	"time"

	"haccs/internal/telemetry"
)

// metricValue scrapes one unlabelled series off the registry.
func metricValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

func TestServeReconnectsReadmitsDroppedClient(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()
	reg := telemetry.NewRegistry()
	if _, err := srv.EnableTelemetry(reg, nil, nil, ""); err != nil {
		t.Fatalf("telemetry: %v", err)
	}

	// Seat one client, then hang up from the client side without a
	// protocol goodbye — the server still holds the stale session.
	conn1, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := &Client{
		Reg:     RegisterFromSummary(0, []float64{1, 2}, nil, 0.5, 100),
		Trainer: echoTrainer(0, 0),
	}
	done := make(chan struct{})
	go func() { defer close(done); c.Serve(conn1) }()
	if _, err := srv.AcceptClients(1); err != nil {
		t.Fatalf("accept: %v", err)
	}
	srv.ServeReconnects()
	srv.ServeReconnects() // idempotent
	conn1.Close()
	<-done

	// Redial: the reconnect loop must replace the stale session, and
	// training over the fresh session must work.
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	go c.Serve(conn2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := srv.Train(0, 1, []float64{1, 2}, noTrace); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never readmitted after reconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if got := metricValue(t, reg, "haccs_net_reconnects_total"); got != 1 {
		t.Errorf("haccs_net_reconnects_total = %v, want 1", got)
	}
	if got := metricValue(t, reg, "haccs_net_sessions_active"); got != 1 {
		t.Errorf("haccs_net_sessions_active = %v, want 1", got)
	}
}

func TestDropSessionIsPointerMatched(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := &Client{Reg: RegisterFromSummary(0, []float64{1}, nil, 0.5, 10), Trainer: echoTrainer(0, 0)}
	go c.Serve(conn)
	if _, err := srv.AcceptClients(1); err != nil {
		t.Fatalf("accept: %v", err)
	}
	srv.mu.Lock()
	stale := srv.sessions[0]
	fresh := &session{reg: stale.reg, enc: stale.enc, dec: stale.dec, conn: stale.conn}
	srv.sessions[0] = fresh
	srv.mu.Unlock()

	// Dropping the *stale* pointer must not evict the fresh session.
	srv.dropSession(0, stale)
	srv.mu.Lock()
	got := srv.sessions[0]
	srv.mu.Unlock()
	if got != fresh {
		t.Fatal("dropSession evicted a session it did not own")
	}
}

func TestAbortLooksLikeACrashToClients(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	const n = 2
	errs := make(chan error, n)
	for id := 0; id < n; id++ {
		go func(id int) {
			c := &Client{
				Reg:     RegisterFromSummary(id, []float64{1}, nil, 0.5, 10),
				Trainer: echoTrainer(id, 0),
			}
			_, err := c.Run(srv.Addr())
			errs <- err
		}(id)
	}
	if _, err := srv.AcceptClients(n); err != nil {
		t.Fatalf("accept: %v", err)
	}
	if err := srv.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	// Unlike Shutdown, Abort sends no farewell: every client must see
	// a receive error, exactly as if the coordinator process died.
	for i := 0; i < n; i++ {
		if err := <-errs; err == nil {
			t.Error("client exited cleanly across an Abort; want a receive error")
		}
	}
	// Abort is idempotent and Close after Abort is a no-op.
	if err := srv.Abort(); err != nil {
		t.Errorf("second abort: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close after abort: %v", err)
	}
}
