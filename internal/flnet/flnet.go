// Package flnet is a minimal network transport for the federated
// protocol: clients connect to a coordinator over TCP, register with
// their distribution summary and system profile, then serve local-
// training requests. It demonstrates the deployment path the paper
// implements with gRPC/PySyft; the simulation experiments use the
// deterministic in-process engine instead, so this package carries the
// protocol, not the evaluation.
//
// Framing is gob over the connection: one Register message from the
// client, then an alternating stream of TrainRequest/TrainReply pairs
// driven by the server, terminated by a Shutdown message.
package flnet

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"haccs/internal/fleet"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// Register is the client's first message: its identity, summary and
// system characteristics (paper Fig. 2, steps 1-2).
type Register struct {
	ClientID int
	// SummaryKind is 0 for P(y), 1 for P(X|y).
	SummaryKind int
	// LabelCounts is the (possibly noised) P(y) histogram.
	LabelCounts []float64
	// FeatureCounts are the per-class (possibly noised) P(X|y)
	// histograms; empty slices mark absent classes.
	FeatureCounts [][]float64
	// LatencyEstimate is the client's expected round latency in seconds.
	LatencyEstimate float64
	// NumSamples is the local training-set size.
	NumSamples int
}

// TrainRequest pushes the global parameters for one round of local
// training (Fig. 2, step 3).
type TrainRequest struct {
	Round  int
	Params []float64
	// Trace is the coordinator's per-client train span context, so the
	// client's local-train span can parent under the coordinator's round
	// span tree. Zero when span tracing is off; a half-set context is a
	// protocol violation the client rejects as *EnvelopeError.
	Trace telemetry.SpanContext
}

// WireSpan is a completed span shipped across the wire — the client's
// local-train measurement riding back on the TrainReply. Only the
// duration travels: client wall clocks are not comparable to the
// coordinator's, so the receiving side records it as a foreign span
// with an unknown start offset.
type WireSpan struct {
	Name     string
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	DurSec   float64
}

// TrainReply returns the locally updated parameters (Fig. 2, step 4).
// A client whose local data distribution has shifted may piggyback a
// refreshed summary (UpdatedLabelCounts non-nil), the wire form of the
// paper's §IV-C asynchronous summary updates; the coordinator forwards
// it to the scheduler for re-clustering.
type TrainReply struct {
	ClientID   int
	Round      int
	Params     []float64
	NumSamples int
	Loss       float64
	// UpdatedLabelCounts, when non-nil, replaces the client's P(y)
	// summary on the server.
	UpdatedLabelCounts []float64
	// TrainSpan, when non-nil, is the client's local-train span for this
	// round, parented under the request's Trace. Clients attach it only
	// when the request carried a trace; the server validates it against
	// the context it sent (see checkWireSpan).
	TrainSpan *WireSpan
	// Stats, when non-nil, is the client's self-reported training
	// statistics block feeding the coordinator's fleet health registry.
	// Like TrainSpan it is optional but validated: a malformed block
	// (non-finite wall time or loss, non-positive samples, negative
	// epochs) is a protocol violation that drops the session (see
	// checkClientStats).
	Stats *fleet.ClientStats
}

// Shutdown ends the session.
type Shutdown struct{ Reason string }

// Envelope wraps every wire message so a single gob stream can carry
// all types.
type Envelope struct {
	Register *Register
	Request  *TrainRequest
	Reply    *TrainReply
	Shutdown *Shutdown
}

// Trainer is the client-side computation: given global parameters,
// produce updated parameters, the local sample count, and a loss.
type Trainer interface {
	Train(round int, params []float64) (updated []float64, numSamples int, loss float64)
}

// TrainerFunc adapts a function to the Trainer interface.
type TrainerFunc func(round int, params []float64) ([]float64, int, float64)

// Train implements Trainer.
func (f TrainerFunc) Train(round int, params []float64) ([]float64, int, float64) {
	return f(round, params)
}

// Client is the device-side endpoint.
type Client struct {
	Reg     Register
	Trainer Trainer
	// SummaryRefresh, when set, is consulted after each local training
	// round; a non-nil return piggybacks a refreshed P(y) summary on the
	// reply (§IV-C adaptation). Most clients leave it nil.
	SummaryRefresh func(round int) []float64
	// LocalEpochs, when positive, is reported in the per-round stats
	// block as the number of local epochs the Trainer runs per request.
	LocalEpochs int
}

// Run connects to the coordinator, registers, and serves training
// requests until the server shuts the session down or the connection
// fails. It returns the number of rounds served.
func (c *Client) Run(addr string) (rounds int, err error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("flnet: dial %s: %w", addr, err)
	}
	return c.Serve(conn)
}

// Serve registers over an already-established connection and serves
// training requests until shutdown or a connection failure, closing
// conn on return. Callers that manage the dial themselves (the load
// generator injects connection churn by closing conns out from under
// the protocol) use this instead of Run.
func (c *Client) Serve(conn net.Conn) (rounds int, err error) {
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(Envelope{Register: &c.Reg}); err != nil {
		return 0, fmt.Errorf("flnet: register: %w", err)
	}
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return rounds, fmt.Errorf("flnet: receive: %w", err)
		}
		if err := env.Check(); err != nil {
			return rounds, err
		}
		switch {
		case env.Shutdown != nil:
			return rounds, nil
		case env.Request != nil:
			if !env.Request.Trace.Valid() {
				return rounds, envelopeErr(ErrBadTraceContext, c.Reg.ClientID, env.Request.Round,
					"half-set span context on TrainRequest")
			}
			start := time.Now()
			params, n, loss := c.Trainer.Train(env.Request.Round, env.Request.Params)
			wall := time.Since(start).Seconds()
			reply := TrainReply{
				ClientID:   c.Reg.ClientID,
				Round:      env.Request.Round,
				Params:     params,
				NumSamples: n,
				Loss:       loss,
				Stats: &fleet.ClientStats{
					TrainWallSec: wall,
					Samples:      n,
					Loss:         loss,
					Epochs:       c.LocalEpochs,
				},
			}
			if sc := env.Request.Trace; !sc.Zero() {
				// Ship the local-train measurement back, parented under
				// the coordinator's train span. The client needs no
				// SpanTracer of its own — just a fresh ID.
				reply.TrainSpan = &WireSpan{
					Name:     "client_train",
					TraceID:  sc.TraceID,
					SpanID:   telemetry.NewSpanID(),
					ParentID: sc.SpanID,
					DurSec:   wall,
				}
			}
			if c.SummaryRefresh != nil {
				reply.UpdatedLabelCounts = c.SummaryRefresh(env.Request.Round)
			}
			if err := enc.Encode(Envelope{Reply: &reply}); err != nil {
				return rounds, fmt.Errorf("flnet: reply: %w", err)
			}
			rounds++
		default:
			return rounds, envelopeErr(ErrUnexpectedMessage, c.Reg.ClientID, -1,
				"client expects TrainRequest or Shutdown")
		}
	}
}

// session is one registered client on the server side.
type session struct {
	reg  Register
	enc  *gob.Encoder
	dec  *gob.Decoder
	conn net.Conn
}

// Server is the coordinator endpoint: it accepts registrations, then
// drives synchronized training rounds over the registered clients.
type Server struct {
	ln net.Listener

	mu       sync.Mutex
	sessions map[int]*session
	// everSeen records every ClientID that has ever held a session, so
	// a re-registration after a drop (or a silent replacement of a
	// stale session) counts as a reconnect rather than a fresh join.
	everSeen   map[int]bool
	reconnects int
	closed     bool
	reconnDone chan struct{}

	// Telemetry (all optional; see EnableTelemetry).
	reg    *telemetry.Registry
	tracer telemetry.Tracer
	http   *telemetry.HTTPServer
}

// NewServer listens on addr (use "127.0.0.1:0" for an ephemeral port).
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("flnet: listen: %w", err)
	}
	return &Server{ln: ln, sessions: map[int]*session{}, everSeen: map[int]bool{}}, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// EnableTelemetry attaches a metrics registry and tracer to the
// coordinator and, when httpAddr is non-empty, mounts the /metrics
// (Prometheus text format) and /debug/trace (JSONL tail of ring)
// endpoints on it, returning the bound address ("" when no endpoint
// was requested). Pass the ring both here and inside tracer (via
// telemetry.Combine) when the tail endpoint should see the
// coordinator's events. Call before AcceptClients; Shutdown stops the
// endpoint.
func (s *Server) EnableTelemetry(reg *telemetry.Registry, tracer telemetry.Tracer, ring *telemetry.RingSink, httpAddr string, opts ...telemetry.ServeOption) (string, error) {
	s.mu.Lock()
	s.reg = reg
	s.tracer = tracer
	s.mu.Unlock()
	if httpAddr == "" {
		return "", nil
	}
	srv, err := telemetry.Serve(httpAddr, reg, ring, opts...)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.http = srv
	s.mu.Unlock()
	return srv.Addr(), nil
}

// AcceptClients blocks until n clients have registered (or an accept
// fails) and returns their registrations. A malformed first message or
// a Register for an already-registered ClientID closes that connection
// and fails the accept loop with a typed *EnvelopeError.
func (s *Server) AcceptClients(n int) ([]Register, error) {
	regs := make([]Register, 0, n)
	for len(regs) < n {
		conn, err := s.ln.Accept()
		if err != nil {
			return regs, fmt.Errorf("flnet: accept: %w", err)
		}
		sess := &session{
			enc:  gob.NewEncoder(conn),
			dec:  gob.NewDecoder(conn),
			conn: conn,
		}
		var env Envelope
		if err := sess.dec.Decode(&env); err != nil {
			conn.Close()
			return regs, fmt.Errorf("flnet: bad registration: %w", err)
		}
		if err := env.Check(); err != nil {
			conn.Close()
			return regs, err
		}
		if env.Register == nil {
			conn.Close()
			return regs, envelopeErr(ErrUnexpectedMessage, -1, -1, "expected Register as first message")
		}
		sess.reg = *env.Register
		s.mu.Lock()
		if _, dup := s.sessions[sess.reg.ClientID]; dup {
			s.mu.Unlock()
			conn.Close()
			return regs, envelopeErr(ErrDuplicateRegister, sess.reg.ClientID, -1, "client already registered")
		}
		s.sessions[sess.reg.ClientID] = sess
		s.everSeen[sess.reg.ClientID] = true
		n := len(s.sessions)
		reg := s.reg
		s.mu.Unlock()
		setSessionGauges(reg, n)
		regs = append(regs, sess.reg)
	}
	return regs, nil
}

// setSessionGauges publishes the live-session count under both the
// original registered-clients name (a stable contract since the gauge
// first shipped) and the churn-oriented sessions-active alias the
// scale harness scrapes.
func setSessionGauges(reg *telemetry.Registry, n int) {
	if reg == nil {
		return
	}
	reg.Gauge("haccs_net_registered_clients", "Clients currently registered with the coordinator.").Set(float64(n))
	reg.Gauge("haccs_net_sessions_active", "Live client sessions on the coordinator (alias of registered clients, tracked for churn analysis).").Set(float64(n))
}

// registerTimeout bounds how long the reconnect accept loop waits for
// a freshly connected socket to send its Register message, so one
// wedged dialer cannot stall admission of everyone behind it.
const registerTimeout = 5 * time.Second

// ServeReconnects starts a background accept loop that re-admits
// clients after AcceptClients has seated the initial fleet: each new
// connection registers exactly as in AcceptClients, but an already-
// known ClientID *replaces* its previous session (closing the stale
// conn) instead of failing — after a client-side drop the server still
// holds the dead session, and a strict duplicate check would lock the
// client out forever. Re-registrations of known clients increment
// haccs_net_reconnects_total. Malformed or slow registrations are
// dropped without disturbing the loop. The loop exits when the
// listener closes; Shutdown and Abort wait for it.
func (s *Server) ServeReconnects() {
	s.mu.Lock()
	if s.closed || s.reconnDone != nil {
		s.mu.Unlock()
		return
	}
	done := make(chan struct{})
	s.reconnDone = done
	s.mu.Unlock()
	go func() {
		defer close(done)
		for {
			conn, err := s.ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.admit(conn)
		}
	}()
}

// admit runs the registration handshake for one reconnecting client.
func (s *Server) admit(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(registerTimeout))
	sess := &session{
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
		conn: conn,
	}
	var env Envelope
	if err := sess.dec.Decode(&env); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if env.Check() != nil || env.Register == nil {
		conn.Close()
		return
	}
	sess.reg = *env.Register
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	old := s.sessions[sess.reg.ClientID]
	s.sessions[sess.reg.ClientID] = sess
	reconnect := s.everSeen[sess.reg.ClientID]
	s.everSeen[sess.reg.ClientID] = true
	if reconnect {
		s.reconnects++
	}
	n := len(s.sessions)
	reg := s.reg
	s.mu.Unlock()
	if old != nil {
		old.conn.Close()
	}
	if reg != nil && reconnect {
		reg.Counter("haccs_net_reconnects_total", "Re-registrations of previously seen clients (connection churn).").Inc()
	}
	setSessionGauges(reg, n)
}

// Sessions returns the number of live client sessions — the shard
// agent piggybacks it on every report so the root can export merged
// session gauges without scraping the shards.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Reconnects returns the cumulative count of re-registrations of
// previously seen clients (the counter behind
// haccs_net_reconnects_total, available without a registry).
func (s *Server) Reconnects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconnects
}

// Registrations returns a snapshot of all registered clients.
func (s *Server) Registrations() []Register {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Register, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess.reg)
	}
	return out
}

// Train runs one request/reply exchange with a single registered
// client: push the global parameters for the round, decode and validate
// the reply. It is the transport primitive the round driver's proxies
// call concurrently (one goroutine per selected client). sc is the
// caller's span context; it travels in the TrainRequest so the client's
// local-train span parents under the coordinator's round tree, and the
// reply's piggybacked span (if any) is validated against it. Any
// failure — connection error, EOF, malformed or mismatched reply —
// drops the session so a dead or misbehaving client cannot wedge later
// rounds, and returns the error (typed *EnvelopeError for protocol
// violations) for the driver to record as a client failure.
func (s *Server) Train(clientID, round int, params []float64, sc telemetry.SpanContext) (TrainReply, error) {
	s.mu.Lock()
	sess, ok := s.sessions[clientID]
	s.mu.Unlock()
	if !ok {
		return TrainReply{}, envelopeErr(ErrNotRegistered, clientID, round, "no live session")
	}
	if err := sess.enc.Encode(Envelope{Request: &TrainRequest{Round: round, Params: params, Trace: sc}}); err != nil {
		s.dropSession(clientID, sess)
		return TrainReply{}, fmt.Errorf("flnet: push to client %d: %w", clientID, err)
	}
	var env Envelope
	if err := sess.dec.Decode(&env); err != nil {
		s.dropSession(clientID, sess)
		return TrainReply{}, fmt.Errorf("flnet: receive from client %d: %w", clientID, err)
	}
	reply, err := checkReply(&env, clientID, round, sc)
	if err != nil {
		s.dropSession(clientID, sess)
		return TrainReply{}, err
	}
	return *reply, nil
}

// dropSession closes and forgets one client session (after a transport
// or protocol error). The drop is pointer-matched: it only removes the
// exact session the failure happened on, so a Train failure racing a
// reconnect cannot evict the client's fresh replacement session.
// Future Train calls for a truly dropped client fail fast with
// ErrNotRegistered.
func (s *Server) dropSession(clientID int, failed *session) {
	s.mu.Lock()
	cur, ok := s.sessions[clientID]
	if ok && cur == failed {
		delete(s.sessions, clientID)
	} else {
		ok = false
	}
	n := len(s.sessions)
	reg := s.reg
	s.mu.Unlock()
	failed.conn.Close()
	if ok {
		setSessionGauges(reg, n)
	}
}

// Close shuts down every session and the listener; see Shutdown.
func (s *Server) Close() error { return s.ShutdownReason("done") }

// Shutdown gracefully stops the coordinator: every registered client
// receives a Shutdown message (so Client.Run returns nil instead of a
// receive error) before its connection closes, the listener stops, and
// the telemetry HTTP endpoint (if any) drains and exits. Safe to call
// more than once. No coordinator goroutines survive the call — the
// shutdown-audit test counts them.
func (s *Server) Shutdown() error { return s.ShutdownReason("shutdown") }

// ShutdownReason is Shutdown with an explicit reason forwarded to the
// clients.
func (s *Server) ShutdownReason(reason string) error {
	return s.teardown(&Shutdown{Reason: reason})
}

// Abort tears the coordinator down without sending Shutdown envelopes:
// connections are simply closed, so clients observe a receive error —
// exactly what a coordinator crash looks like from the fleet. The
// scale harness uses it to inject a mid-run kill before exercising
// checkpoint resume; production code should call Shutdown.
func (s *Server) Abort() error {
	return s.teardown(nil)
}

// teardown closes sessions (sending farewell first when non-nil), the
// listener, the reconnect loop and the telemetry endpoint. Safe to
// call more than once.
func (s *Server) teardown(farewell *Shutdown) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, sess := range s.sessions {
		if farewell != nil {
			_ = sess.enc.Encode(Envelope{Shutdown: farewell})
		}
		sess.conn.Close()
	}
	s.sessions = map[int]*session{}
	httpSrv := s.http
	s.http = nil
	reg := s.reg
	reconnDone := s.reconnDone
	s.mu.Unlock()
	setSessionGauges(reg, 0)
	err := s.ln.Close()
	if reconnDone != nil {
		<-reconnDone
	}
	if httpSrv != nil {
		if herr := httpSrv.Close(); err == nil {
			err = herr
		}
	}
	return err
}

// RegisterFromSummary converts a core-style summary (label counts or
// per-class feature counts) into the wire form. Callers noise the
// histograms before registration when privacy is required.
func RegisterFromSummary(clientID int, labelCounts []float64, featureCounts [][]float64, latency float64, numSamples int) Register {
	kind := 0
	if featureCounts != nil {
		kind = 1
	}
	return Register{
		ClientID:        clientID,
		SummaryKind:     kind,
		LabelCounts:     append([]float64(nil), labelCounts...),
		FeatureCounts:   featureCounts,
		LatencyEstimate: latency,
		NumSamples:      numSamples,
	}
}

// LabelHistogram reconstructs a stats.Histogram from wire counts.
func (r Register) LabelHistogram() *stats.Histogram {
	return &stats.Histogram{Counts: append([]float64(nil), r.LabelCounts...)}
}
