package flnet

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"net"
	"testing"

	"haccs/internal/telemetry"
)

// TestEnvelopeTraceContextRoundTrip checks the gob wire form preserves
// the span context and the piggybacked span bit-exactly.
func TestEnvelopeTraceContextRoundTrip(t *testing.T) {
	req := Envelope{Request: &TrainRequest{
		Round:  3,
		Params: []float64{1, 2},
		Trace:  telemetry.SpanContext{TraceID: 0xfeedface, SpanID: 0xdeadbeef},
	}}
	rep := Envelope{Reply: &TrainReply{
		ClientID: 1,
		Round:    3,
		TrainSpan: &WireSpan{
			Name:     "client_train",
			TraceID:  0xfeedface,
			SpanID:   0x1234,
			ParentID: 0xdeadbeef,
			DurSec:   0.125,
		},
	}}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	for _, env := range []Envelope{req, rep} {
		if err := enc.Encode(env); err != nil {
			t.Fatal(err)
		}
	}
	var gotReq, gotRep Envelope
	if err := dec.Decode(&gotReq); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&gotRep); err != nil {
		t.Fatal(err)
	}
	if got := gotReq.Request.Trace; got != req.Request.Trace {
		t.Errorf("request trace = %+v, want %+v", got, req.Request.Trace)
	}
	ws := gotRep.Reply.TrainSpan
	if ws == nil || *ws != *rep.Reply.TrainSpan {
		t.Errorf("reply span = %+v, want %+v", ws, rep.Reply.TrainSpan)
	}
}

// TestCheckWireSpan covers every rejection path of the reply-span
// validation as *EnvelopeError with the dedicated kind.
func TestCheckWireSpan(t *testing.T) {
	sc := telemetry.SpanContext{TraceID: 0xaa, SpanID: 0xbb}
	good := WireSpan{Name: "client_train", TraceID: 0xaa, SpanID: 0xcc, ParentID: 0xbb, DurSec: 0.5}
	cases := []struct {
		name string
		ws   *WireSpan
		sc   telemetry.SpanContext
		bad  bool
	}{
		{"nil span traced request", nil, sc, false},
		{"nil span untraced request", nil, telemetry.SpanContext{}, false},
		{"valid", &good, sc, false},
		{"unsolicited", &good, telemetry.SpanContext{}, true},
		{"zero span id", &WireSpan{TraceID: 0xaa, ParentID: 0xbb, DurSec: 1}, sc, true},
		{"wrong trace", &WireSpan{TraceID: 0x99, SpanID: 0xcc, ParentID: 0xbb, DurSec: 1}, sc, true},
		{"wrong parent", &WireSpan{TraceID: 0xaa, SpanID: 0xcc, ParentID: 0x99, DurSec: 1}, sc, true},
		{"nan duration", &WireSpan{TraceID: 0xaa, SpanID: 0xcc, ParentID: 0xbb, DurSec: math.NaN()}, sc, true},
		{"inf duration", &WireSpan{TraceID: 0xaa, SpanID: 0xcc, ParentID: 0xbb, DurSec: math.Inf(1)}, sc, true},
		{"negative duration", &WireSpan{TraceID: 0xaa, SpanID: 0xcc, ParentID: 0xbb, DurSec: -1}, sc, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkWireSpan(tc.ws, 3, 7, tc.sc)
			if !tc.bad {
				if err != nil {
					t.Fatalf("checkWireSpan = %v, want nil", err)
				}
				return
			}
			var ee *EnvelopeError
			if !errors.As(err, &ee) || ee.Kind != ErrBadTraceContext {
				t.Fatalf("checkWireSpan = %v, want ErrBadTraceContext", err)
			}
			if ee.ClientID != 3 || ee.Round != 7 {
				t.Fatalf("error context = client %d round %d", ee.ClientID, ee.Round)
			}
		})
	}
}

// TestMisbehavingSpanDropsSession is the wire form: a reply whose
// piggybacked span violates the trace contract must fail Train with
// ErrBadTraceContext and drop the session.
func TestMisbehavingSpanDropsSession(t *testing.T) {
	cases := []struct {
		name string
		span func(req *TrainRequest) *WireSpan
	}{
		{"unsolicited span", func(*TrainRequest) *WireSpan {
			// The request below carries no trace; any span is unsolicited.
			return &WireSpan{Name: "client_train", TraceID: 1, SpanID: 2, ParentID: 3, DurSec: 1}
		}},
	}
	tracedCases := []struct {
		name string
		span func(req *TrainRequest) *WireSpan
	}{
		{"wrong trace", func(req *TrainRequest) *WireSpan {
			return &WireSpan{TraceID: req.Trace.TraceID + 1, SpanID: 2, ParentID: req.Trace.SpanID, DurSec: 1}
		}},
		{"wrong parent", func(req *TrainRequest) *WireSpan {
			return &WireSpan{TraceID: req.Trace.TraceID, SpanID: 2, ParentID: req.Trace.SpanID + 1, DurSec: 1}
		}},
		{"nan duration", func(req *TrainRequest) *WireSpan {
			return &WireSpan{TraceID: req.Trace.TraceID, SpanID: 2, ParentID: req.Trace.SpanID, DurSec: math.NaN()}
		}},
	}
	run := func(t *testing.T, sc telemetry.SpanContext, span func(req *TrainRequest) *WireSpan) {
		srv, err := NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		errc := acceptAsync(srv, 1)
		raw := dialRaw(t, srv.Addr())
		raw.register(t, 0)
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			if req := raw.expectRequest(t); req != nil {
				_ = raw.enc.Encode(Envelope{Reply: &TrainReply{
					ClientID:  0,
					Round:     req.Round,
					TrainSpan: span(req),
				}})
			}
		}()
		_, err = srv.Train(0, 4, []float64{1}, sc)
		<-done
		var ee *EnvelopeError
		if !errors.As(err, &ee) || ee.Kind != ErrBadTraceContext {
			t.Fatalf("Train err = %v, want ErrBadTraceContext", err)
		}
		if _, err := srv.Train(0, 5, []float64{1}, sc); !errors.As(err, &ee) || ee.Kind != ErrNotRegistered {
			t.Fatalf("post-violation Train err = %v, want ErrNotRegistered", err)
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { run(t, telemetry.SpanContext{}, tc.span) })
	}
	sc := telemetry.SpanContext{TraceID: 0x700, SpanID: 0x701}
	for _, tc := range tracedCases {
		t.Run(tc.name, func(t *testing.T) { run(t, sc, tc.span) })
	}
}

// TestClientRejectsHalfSetContext checks the device side of the
// contract: a TrainRequest with a half-set span context ends the
// session with ErrBadTraceContext instead of training.
func TestClientRejectsHalfSetContext(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c := &Client{
			Reg:     RegisterFromSummary(0, []float64{1}, nil, 1, 10),
			Trainer: echoTrainer(0, 0),
		}
		_, err := c.Run(ln.Addr().String())
		done <- err
	}()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	var reg Envelope
	if err := dec.Decode(&reg); err != nil || reg.Register == nil {
		t.Fatalf("registration: %v %+v", err, reg)
	}
	if err := enc.Encode(Envelope{Request: &TrainRequest{
		Round:  0,
		Params: []float64{1},
		Trace:  telemetry.SpanContext{TraceID: 5}, // SpanID missing
	}}); err != nil {
		t.Fatal(err)
	}
	var ee *EnvelopeError
	if err := <-done; !errors.As(err, &ee) || ee.Kind != ErrBadTraceContext {
		t.Fatalf("client exit = %v, want ErrBadTraceContext", err)
	}
}

// TestTrainShipsClientSpan checks the happy path of one traced
// exchange: the reply carries a client_train span minted by the client,
// in the request's trace, parented under the request's span.
func TestTrainShipsClientSpan(t *testing.T) {
	srv, _, wg := startCluster(t, 1)
	sc := telemetry.SpanContext{TraceID: telemetry.NewSpanID(), SpanID: telemetry.NewSpanID()}
	rep, err := srv.Train(0, 0, []float64{1}, sc)
	if err != nil {
		t.Fatal(err)
	}
	ws := rep.TrainSpan
	if ws == nil {
		t.Fatal("traced request got no TrainSpan back")
	}
	if ws.Name != "client_train" || ws.TraceID != sc.TraceID || ws.ParentID != sc.SpanID {
		t.Errorf("span = %+v, want client_train under %+v", ws, sc)
	}
	if ws.SpanID == 0 || ws.SpanID == sc.SpanID {
		t.Errorf("span ID %x not freshly minted", ws.SpanID)
	}
	if ws.DurSec < 0 {
		t.Errorf("duration %v", ws.DurSec)
	}

	// Untraced request: no span rides back.
	rep, err = srv.Train(0, 1, []float64{1}, telemetry.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrainSpan != nil {
		t.Errorf("untraced request got span %+v", rep.TrainSpan)
	}
	srv.Close()
	wg.Wait()
}

// TestCoordinatorSpanTreeOverTCP is the acceptance check for wire
// propagation: a TCP round recorded into the flight-recorder JSONL
// yields a span tree where each client's local-train span is a child of
// the coordinator's per-client train span, all within the round root's
// trace.
func TestCoordinatorSpanTreeOverTCP(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	spans := telemetry.NewSpanTracer(sink, nil)

	srv, _, wg := startCluster(t, 3)
	strat := &pickStrategy{sel: [][]int{{0, 1, 2}}}
	coord, err := NewCoordinator(srv, CoordinatorConfig{ClientsPerRound: 3, Spans: spans}, strat, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	out := coord.RunRound(0)
	if !out.Aggregated {
		t.Fatalf("round failed: %+v", out)
	}
	srv.Close()
	wg.Wait()

	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var root telemetry.Event
	trainSpan := map[int]telemetry.Event{}  // coordinator side, by client
	clientSpan := map[int]telemetry.Event{} // foreign, by client
	for _, e := range events {
		if e.Kind != telemetry.KindSpan {
			continue
		}
		switch e.Span {
		case "round":
			root = e
		case "train":
			trainSpan[e.Client] = e
		case "client_train":
			clientSpan[e.Client] = e
		}
	}
	if root.SpanID == "" || root.ParentID != "" {
		t.Fatalf("round root span missing or parented: %+v", root)
	}
	for id := 0; id < 3; id++ {
		ts, ok := trainSpan[id]
		if !ok {
			t.Fatalf("no coordinator train span for client %d", id)
		}
		cs, ok := clientSpan[id]
		if !ok {
			t.Fatalf("no client_train span for client %d", id)
		}
		if cs.ParentID != ts.SpanID {
			t.Errorf("client %d: client_train parent %s, want coordinator train span %s", id, cs.ParentID, ts.SpanID)
		}
		if cs.TraceID != root.TraceID || ts.TraceID != root.TraceID {
			t.Errorf("client %d: traces %s/%s, want root trace %s", id, cs.TraceID, ts.TraceID, root.TraceID)
		}
		if cs.StartSec != -1 {
			t.Errorf("client %d: foreign span start %v, want -1", id, cs.StartSec)
		}
		if cs.Round != 0 {
			t.Errorf("client %d: span round %d", id, cs.Round)
		}
	}
}
