package metrics

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"haccs/internal/fl"
)

func sampleHistory() []fl.Point {
	return []fl.Point{
		{Round: 5, Time: 10.5, Acc: 0.3, Loss: 1.9},
		{Round: 10, Time: 21, Acc: 0.55, Loss: 1.2},
	}
}

func TestWriteHistoryCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHistoryCSV(&buf, sampleHistory()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("got %d records", len(records))
	}
	if records[0][0] != "round" || records[0][3] != "loss" {
		t.Errorf("header %v", records[0])
	}
	if records[1][0] != "5" || records[2][2] != "0.55" {
		t.Errorf("rows %v", records[1:])
	}
}

func TestWriteCurvesCSVDeterministicOrder(t *testing.T) {
	curves := map[string][]fl.Point{
		"zeta":  {{Round: 1, Time: 1, Acc: 0.1}},
		"alpha": {{Round: 1, Time: 2, Acc: 0.2}},
	}
	var a, b bytes.Buffer
	if err := WriteCurvesCSV(&a, curves); err != nil {
		t.Fatal(err)
	}
	if err := WriteCurvesCSV(&b, curves); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("output order not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if !strings.HasPrefix(lines[1], "alpha,") || !strings.HasPrefix(lines[2], "zeta,") {
		t.Errorf("strategies not sorted: %v", lines)
	}
}

func TestSummarizeAndJSON(t *testing.T) {
	res := &fl.Result{
		Strategy: "haccs-P(y)",
		Rounds:   10,
		Clock:    21,
		History:  sampleHistory(),
	}
	s := Summarize(res, 0.5)
	if s.FinalAccuracy != 0.55 || s.BestAccuracy != 0.55 || s.Rounds != 10 {
		t.Errorf("summary %+v", s)
	}
	if s.TTA == nil {
		t.Fatal("TTA missing despite reached target")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunSummary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Strategy != "haccs-P(y)" || len(back.History) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
	// Unreached target: TTA omitted.
	s2 := Summarize(res, 0.99)
	if s2.TTA != nil {
		t.Error("TTA present for unreached target")
	}
	// Zero target: skipped entirely.
	if s3 := Summarize(res, 0); s3.TTA != nil {
		t.Error("TTA present for zero target")
	}
}
