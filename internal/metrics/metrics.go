// Package metrics post-processes federated training results into the
// quantities the paper reports: time-to-accuracy (TTA), percentage
// reductions between strategies, smoothed accuracy curves, and plain-text
// tables for the benchmark harness output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"haccs/internal/fl"
	"haccs/internal/stats"
)

// TTA returns the virtual time at which the run first reached the target
// accuracy, interpolating linearly between evaluation points. The second
// return is false when the run never reached the target.
func TTA(history []fl.Point, target float64) (float64, bool) {
	prevTime, prevAcc := 0.0, 0.0
	for _, p := range history {
		if p.Acc >= target {
			if p.Acc == prevAcc {
				return p.Time, true
			}
			// Interpolate between the previous point and this one.
			frac := (target - prevAcc) / (p.Acc - prevAcc)
			if frac < 0 {
				frac = 0
			}
			return prevTime + frac*(p.Time-prevTime), true
		}
		prevTime, prevAcc = p.Time, p.Acc
	}
	return 0, false
}

// Reduction returns the fractional reduction of b relative to a:
// (a-b)/a. Positive values mean b is faster/smaller.
func Reduction(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}

// BestAccuracy returns the maximum accuracy any evaluation point
// reached.
func BestAccuracy(history []fl.Point) float64 {
	best := 0.0
	for _, p := range history {
		if p.Acc > best {
			best = p.Acc
		}
	}
	return best
}

// AccuracyAtTime returns the last evaluated accuracy at or before the
// given virtual time (0 before the first evaluation).
func AccuracyAtTime(history []fl.Point, t float64) float64 {
	acc := 0.0
	for _, p := range history {
		if p.Time > t {
			break
		}
		acc = p.Acc
	}
	return acc
}

// SmoothedCurve returns a copy of the history with EMA-smoothed
// accuracies (the paper's Fig. 5 presents smoothed curves).
func SmoothedCurve(history []fl.Point, alpha float64) []fl.Point {
	accs := make([]float64, len(history))
	for i, p := range history {
		accs[i] = p.Acc
	}
	sm := stats.EMA(accs, alpha)
	out := append([]fl.Point(nil), history...)
	for i := range out {
		out[i].Acc = sm[i]
	}
	return out
}

// Table renders rows as a fixed-width plain-text table. Every row must
// have the same number of cells as the header.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable constructs a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("metrics: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fmt.Sprintf("%v", v)
	}
	av := math.Abs(v)
	switch {
	case av != 0 && av < 0.01:
		return fmt.Sprintf("%.4g", v)
	case av < 10:
		return fmt.Sprintf("%.3f", v)
	case av < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsBy sorts the table rows by the given column, numerically when
// both cells parse as numbers and lexically otherwise.
func (t *Table) SortRowsBy(col int) {
	sort.SliceStable(t.Rows, func(a, b int) bool {
		var fa, fb float64
		na, errA := fmt.Sscanf(t.Rows[a][col], "%g", &fa)
		nb, errB := fmt.Sscanf(t.Rows[b][col], "%g", &fb)
		if na == 1 && nb == 1 && errA == nil && errB == nil {
			return fa < fb
		}
		return t.Rows[a][col] < t.Rows[b][col]
	})
}
