package metrics

import (
	"math"
	"strings"
	"testing"

	"haccs/internal/fl"
)

func history(points ...[3]float64) []fl.Point {
	out := make([]fl.Point, len(points))
	for i, p := range points {
		out[i] = fl.Point{Round: i + 1, Time: p[0], Acc: p[1], Loss: p[2]}
	}
	return out
}

func TestTTAInterpolates(t *testing.T) {
	h := history([3]float64{10, 0.2, 1}, [3]float64{20, 0.6, 0.5})
	got, ok := TTA(h, 0.4)
	if !ok {
		t.Fatal("target not reached")
	}
	// Linear between (10, 0.2) and (20, 0.6): 0.4 at t=15.
	if math.Abs(got-15) > 1e-9 {
		t.Errorf("TTA = %v, want 15", got)
	}
}

func TestTTAExactPoint(t *testing.T) {
	h := history([3]float64{10, 0.5, 1})
	got, ok := TTA(h, 0.5)
	if !ok || got != 10 {
		t.Errorf("TTA = %v, %v", got, ok)
	}
}

func TestTTANeverReached(t *testing.T) {
	h := history([3]float64{10, 0.3, 1}, [3]float64{20, 0.4, 1})
	if _, ok := TTA(h, 0.9); ok {
		t.Error("TTA reported success for unreached target")
	}
}

func TestTTAFromZero(t *testing.T) {
	// First point already above target: interpolate from (0, 0).
	h := history([3]float64{10, 0.8, 1})
	got, ok := TTA(h, 0.4)
	if !ok {
		t.Fatal("not reached")
	}
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("TTA = %v, want 5", got)
	}
}

func TestReduction(t *testing.T) {
	if r := Reduction(100, 80); math.Abs(r-0.2) > 1e-12 {
		t.Errorf("Reduction = %v", r)
	}
	if r := Reduction(100, 120); math.Abs(r+0.2) > 1e-12 {
		t.Errorf("negative reduction = %v", r)
	}
	if Reduction(0, 5) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

func TestBestAccuracyAndAtTime(t *testing.T) {
	h := history([3]float64{10, 0.3, 1}, [3]float64{20, 0.7, 1}, [3]float64{30, 0.6, 1})
	if BestAccuracy(h) != 0.7 {
		t.Errorf("BestAccuracy = %v", BestAccuracy(h))
	}
	if AccuracyAtTime(h, 25) != 0.7 {
		t.Errorf("AccuracyAtTime(25) = %v", AccuracyAtTime(h, 25))
	}
	if AccuracyAtTime(h, 5) != 0 {
		t.Errorf("AccuracyAtTime(5) = %v", AccuracyAtTime(h, 5))
	}
	if AccuracyAtTime(h, 30) != 0.6 {
		t.Errorf("AccuracyAtTime(30) = %v", AccuracyAtTime(h, 30))
	}
}

func TestSmoothedCurvePreservesTimes(t *testing.T) {
	h := history([3]float64{10, 0, 1}, [3]float64{20, 1, 1}, [3]float64{30, 0, 1})
	sm := SmoothedCurve(h, 0.5)
	if len(sm) != 3 {
		t.Fatal("length changed")
	}
	for i := range sm {
		if sm[i].Time != h[i].Time || sm[i].Round != h[i].Round {
			t.Error("times/rounds altered")
		}
	}
	if sm[2].Acc <= 0 {
		t.Error("smoothing lost history")
	}
	// Original must be untouched.
	if h[2].Acc != 0 {
		t.Error("SmoothedCurve mutated input")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("strategy", "tta")
	tab.AddRow("random", 123.456)
	tab.AddRow("haccs-P(y)", 78.9)
	s := tab.String()
	if !strings.Contains(s, "strategy") || !strings.Contains(s, "haccs-P(y)") {
		t.Errorf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), s)
	}
}

func TestTableRowWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("a", "b").AddRow("only-one")
}

func TestTableSortRowsBy(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("b", 3.0)
	tab.AddRow("a", 1.0)
	tab.AddRow("c", 2.0)
	tab.SortRowsBy(1)
	if tab.Rows[0][0] != "a" || tab.Rows[2][0] != "b" {
		t.Errorf("numeric sort wrong: %v", tab.Rows)
	}
	tab.SortRowsBy(0)
	if tab.Rows[0][0] != "a" || tab.Rows[2][0] != "c" {
		t.Errorf("lexical sort wrong: %v", tab.Rows)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0.001234: "0.001234",
		1.23456:  "1.235",
		123.456:  "123.5",
		12345.6:  "12346",
		0:        "0.000",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
