package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"haccs/internal/fl"
)

// WriteHistoryCSV writes a training history as CSV with columns
// round,time,accuracy,loss — the format external plotting tools consume
// to redraw the paper's curves.
func WriteHistoryCSV(w io.Writer, history []fl.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "time", "accuracy", "loss"}); err != nil {
		return fmt.Errorf("metrics: write header: %w", err)
	}
	for _, p := range history {
		rec := []string{
			strconv.Itoa(p.Round),
			strconv.FormatFloat(p.Time, 'g', -1, 64),
			strconv.FormatFloat(p.Acc, 'g', -1, 64),
			strconv.FormatFloat(p.Loss, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("metrics: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCurvesCSV writes several named histories side by side in long
// form: strategy,round,time,accuracy,loss.
func WriteCurvesCSV(w io.Writer, curves map[string][]fl.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"strategy", "round", "time", "accuracy", "loss"}); err != nil {
		return fmt.Errorf("metrics: write header: %w", err)
	}
	// Deterministic order for reproducible files.
	names := make([]string, 0, len(curves))
	for name := range curves {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		for _, p := range curves[name] {
			rec := []string{
				name,
				strconv.Itoa(p.Round),
				strconv.FormatFloat(p.Time, 'g', -1, 64),
				strconv.FormatFloat(p.Acc, 'g', -1, 64),
				strconv.FormatFloat(p.Loss, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("metrics: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// RunSummary is the JSON-exportable digest of one training run.
type RunSummary struct {
	Strategy      string     `json:"strategy"`
	Rounds        int        `json:"rounds"`
	VirtualTime   float64    `json:"virtual_time_sec"`
	FinalAccuracy float64    `json:"final_accuracy"`
	BestAccuracy  float64    `json:"best_accuracy"`
	TTA           *float64   `json:"tta_sec,omitempty"`
	Target        float64    `json:"target_accuracy,omitempty"`
	History       []fl.Point `json:"history"`
}

// Summarize digests a result for JSON export; target 0 skips TTA.
func Summarize(res *fl.Result, target float64) RunSummary {
	s := RunSummary{
		Strategy:      res.Strategy,
		Rounds:        res.Rounds,
		VirtualTime:   res.Clock,
		FinalAccuracy: res.FinalAccuracy(),
		BestAccuracy:  BestAccuracy(res.History),
		Target:        target,
		History:       res.History,
	}
	if target > 0 {
		if tta, ok := TTA(res.History, target); ok {
			s.TTA = &tta
		}
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (s RunSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
