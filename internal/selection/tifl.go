package selection

import (
	"sort"

	"haccs/internal/fl"
	"haccs/internal/stats"
)

// TiFL implements the tier-based selection of Chai et al. (HPDC'20):
// clients are grouped into tiers by their system performance (round
// latency); each epoch one tier is sampled with probability proportional
// to its average observed loss, subject to per-tier credits that bound
// how often a tier may be chosen; the round's clients are then drawn
// uniformly from the sampled tier, spilling into neighbouring tiers when
// the tier cannot fill the budget.
type TiFL struct {
	// NumTiers is the number of latency tiers (TiFL's default is 5).
	NumTiers int
	// CreditsPerTier bounds how many times each tier may be the primary
	// selection (0 means unlimited).
	CreditsPerTier int
	// InitLoss seeds every client's unknown loss before it first trains;
	// equal seeds make initial tier selection uniform.
	InitLoss float64

	rng      *stats.RNG
	tierOf   []int   // client -> tier
	tiers    [][]int // tier -> member client IDs (sorted by latency)
	credits  []int
	lastLoss []float64
}

// NewTiFL returns a TiFL strategy with the given tier count (<=0 picks
// the TiFL default of 5).
func NewTiFL(numTiers int) *TiFL {
	if numTiers <= 0 {
		numTiers = 5
	}
	return &TiFL{NumTiers: numTiers, InitLoss: 2.3}
}

// Name implements fl.Strategy.
func (t *TiFL) Name() string { return "tifl" }

// Init implements fl.Strategy: tiers are equal-size latency quantiles.
func (t *TiFL) Init(clients []fl.ClientInfo, rng *stats.RNG) {
	t.rng = rng
	n := len(clients)
	numTiers := t.NumTiers
	if numTiers > n {
		numTiers = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return clients[order[a]].Latency < clients[order[b]].Latency
	})
	t.tierOf = make([]int, n)
	t.tiers = make([][]int, numTiers)
	for rank, idx := range order {
		tier := rank * numTiers / n
		t.tierOf[clients[idx].ID] = tier
		t.tiers[tier] = append(t.tiers[tier], clients[idx].ID)
	}
	t.credits = make([]int, numTiers)
	for i := range t.credits {
		t.credits[i] = t.CreditsPerTier
	}
	t.lastLoss = make([]float64, n)
	for i := range t.lastLoss {
		t.lastLoss[i] = t.InitLoss
	}
}

// Select implements fl.Strategy.
func (t *TiFL) Select(epoch int, available []bool, k int) []int {
	// Average loss per tier over tiers that still have credits and at
	// least one available member.
	weights := make([]float64, len(t.tiers))
	anyWeight := false
	for tier, members := range t.tiers {
		if t.CreditsPerTier > 0 && t.credits[tier] <= 0 {
			continue
		}
		sum, cnt := 0.0, 0
		for _, id := range members {
			if available[id] {
				sum += t.lastLoss[id]
				cnt++
			}
		}
		if cnt > 0 {
			weights[tier] = sum / float64(cnt)
			anyWeight = true
		}
	}
	if !anyWeight {
		// Credits exhausted or nothing available in credited tiers: fall
		// back to uniform over whatever is available.
		return t.fallback(available, k)
	}
	primary := t.rng.WeightedChoice(weights)
	if t.CreditsPerTier > 0 {
		t.credits[primary]--
	}

	selected := t.drawFromTier(primary, available, k, nil)
	// Spill outward (faster tiers first) when the primary tier cannot
	// fill the budget.
	for dist := 1; len(selected) < k && dist < len(t.tiers); dist++ {
		for _, tier := range []int{primary - dist, primary + dist} {
			if tier < 0 || tier >= len(t.tiers) || len(selected) >= k {
				continue
			}
			selected = t.drawFromTier(tier, available, k, selected)
		}
	}
	return selected
}

// drawFromTier appends uniformly drawn available, not-yet-selected
// members of the tier until the budget is reached.
func (t *TiFL) drawFromTier(tier int, available []bool, k int, selected []int) []int {
	taken := make(map[int]bool, len(selected))
	for _, id := range selected {
		taken[id] = true
	}
	var cands []int
	for _, id := range t.tiers[tier] {
		if available[id] && !taken[id] {
			cands = append(cands, id)
		}
	}
	t.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	for _, id := range cands {
		if len(selected) >= k {
			break
		}
		selected = append(selected, id)
	}
	return selected
}

func (t *TiFL) fallback(available []bool, k int) []int {
	cands := fl.FilterAvailable(available)
	if len(cands) <= k {
		return cands
	}
	idx := t.rng.SampleWithoutReplacement(len(cands), k)
	out := make([]int, k)
	for i, j := range idx {
		out[i] = cands[j]
	}
	return out
}

// Update implements fl.Strategy.
func (t *TiFL) Update(epoch int, selected []int, losses []float64) {
	for i, id := range selected {
		t.lastLoss[id] = losses[i]
	}
}

// TierOf exposes the tier assignment for tests and analyses.
func (t *TiFL) TierOf(id int) int { return t.tierOf[id] }
