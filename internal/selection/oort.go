package selection

import (
	"math"
	"sort"

	"haccs/internal/fl"
	"haccs/internal/stats"
)

// Oort implements the guided participant selection of Lai et al.
// (OSDI'21). Each client carries a utility combining statistical value
// (data size × observed loss — clients whose data still produces high
// loss are more useful) with a system penalty for clients slower than the
// preferred round duration:
//
//	U_i = n_i · loss_i · min(1, (T/t_i)^α)
//
// Selection is exploitation of the top-utility explored clients blended
// with ε-greedy exploration of never-trained clients, with ε decaying
// over rounds.
type Oort struct {
	// Alpha is the system-penalty exponent (Oort's default 2).
	Alpha float64
	// EpsilonStart/EpsilonMin/EpsilonDecay control exploration.
	EpsilonStart, EpsilonMin, EpsilonDecay float64
	// PreferredDurationPercentile sets T as this percentile of the
	// client latency distribution (Oort's "developer-preferred" round
	// duration; 80 by default).
	PreferredDurationPercentile float64

	rng        *stats.RNG
	numSamples []int
	latency    []float64
	lastLoss   []float64
	explored   []bool
	epsilon    float64
	preferredT float64
}

// NewOort returns an Oort strategy with the reference defaults.
func NewOort() *Oort {
	return &Oort{
		Alpha:                       2,
		EpsilonStart:                0.9,
		EpsilonMin:                  0.2,
		EpsilonDecay:                0.98,
		PreferredDurationPercentile: 80,
	}
}

// Name implements fl.Strategy.
func (o *Oort) Name() string { return "oort" }

// Init implements fl.Strategy.
func (o *Oort) Init(clients []fl.ClientInfo, rng *stats.RNG) {
	o.rng = rng
	n := len(clients)
	o.numSamples = make([]int, n)
	o.latency = make([]float64, n)
	o.lastLoss = make([]float64, n)
	o.explored = make([]bool, n)
	lats := make([]float64, n)
	for _, c := range clients {
		o.numSamples[c.ID] = c.NumSamples
		o.latency[c.ID] = c.Latency
		lats[c.ID] = c.Latency
	}
	o.preferredT = stats.Percentile(lats, o.PreferredDurationPercentile)
	o.epsilon = o.EpsilonStart
}

// Utility returns the current utility of a client.
func (o *Oort) Utility(id int) float64 {
	u := float64(o.numSamples[id]) * o.lastLoss[id]
	if o.latency[id] > o.preferredT {
		u *= math.Pow(o.preferredT/o.latency[id], o.Alpha)
	}
	return u
}

// Select implements fl.Strategy.
func (o *Oort) Select(epoch int, available []bool, k int) []int {
	cands := fl.FilterAvailable(available)
	if len(cands) <= k {
		return cands
	}
	var unexplored, explored []int
	for _, id := range cands {
		if o.explored[id] {
			explored = append(explored, id)
		} else {
			unexplored = append(unexplored, id)
		}
	}
	nExplore := int(math.Round(o.epsilon * float64(k)))
	if nExplore > len(unexplored) {
		nExplore = len(unexplored)
	}
	nExploit := k - nExplore
	if nExploit > len(explored) {
		// Not enough explored clients yet: shift budget to exploration.
		extra := nExploit - len(explored)
		nExploit = len(explored)
		nExplore = min(nExplore+extra, len(unexplored))
	}

	var selected []int
	if nExplore > 0 {
		idx := o.rng.SampleWithoutReplacement(len(unexplored), nExplore)
		for _, j := range idx {
			selected = append(selected, unexplored[j])
		}
	}
	if nExploit > 0 {
		sort.SliceStable(explored, func(a, b int) bool {
			ua, ub := o.Utility(explored[a]), o.Utility(explored[b])
			if ua != ub {
				return ua > ub
			}
			return explored[a] < explored[b]
		})
		selected = append(selected, explored[:nExploit]...)
	}
	return selected
}

// Update implements fl.Strategy.
func (o *Oort) Update(epoch int, selected []int, losses []float64) {
	for i, id := range selected {
		o.lastLoss[id] = losses[i]
		o.explored[id] = true
	}
	o.epsilon = math.Max(o.EpsilonMin, o.epsilon*o.EpsilonDecay)
}
