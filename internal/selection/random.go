// Package selection implements the baseline client-selection strategies
// HACCS is evaluated against: uniform random selection, TiFL's
// latency-tiered credit scheme (Chai et al., HPDC'20), and Oort's
// utility-guided exploration/exploitation (Lai et al., OSDI'21). All
// implement fl.Strategy so the engine can drive them interchangeably.
//
// Under a round deadline (partial aggregation), Update receives only
// the clients that reported in time — see fl.Strategy — so the
// loss-driven state below (TiFL credits, Oort utilities) is fed
// exclusively by results that entered the aggregate.
package selection

import (
	"haccs/internal/fl"
	"haccs/internal/stats"
)

// Random selects k available clients uniformly at random each round —
// the paper's "Random Selection" baseline.
type Random struct {
	rng *stats.RNG
}

// NewRandom returns the uniform random strategy.
func NewRandom() *Random { return &Random{} }

// Name implements fl.Strategy.
func (r *Random) Name() string { return "random" }

// Init implements fl.Strategy.
func (r *Random) Init(clients []fl.ClientInfo, rng *stats.RNG) { r.rng = rng }

// Select implements fl.Strategy.
func (r *Random) Select(epoch int, available []bool, k int) []int {
	cands := fl.FilterAvailable(available)
	if len(cands) <= k {
		return cands
	}
	idx := r.rng.SampleWithoutReplacement(len(cands), k)
	out := make([]int, k)
	for i, j := range idx {
		out[i] = cands[j]
	}
	return out
}

// Update implements fl.Strategy.
func (r *Random) Update(epoch int, selected []int, losses []float64) {}
