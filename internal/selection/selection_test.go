package selection

import (
	"math"
	"testing"

	"haccs/internal/fl"
	"haccs/internal/stats"
)

// roster builds n ClientInfos with latency equal to ID+1 and 100 samples.
func roster(n int) []fl.ClientInfo {
	out := make([]fl.ClientInfo, n)
	for i := range out {
		out[i] = fl.ClientInfo{ID: i, Latency: float64(i + 1), NumSamples: 100}
	}
	return out
}

func allUp(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func validSelection(t *testing.T, name string, sel []int, available []bool, k int) {
	t.Helper()
	if len(sel) > k {
		t.Fatalf("%s selected %d > k=%d", name, len(sel), k)
	}
	seen := map[int]bool{}
	for _, id := range sel {
		if id < 0 || id >= len(available) || !available[id] {
			t.Fatalf("%s selected invalid/unavailable client %d", name, id)
		}
		if seen[id] {
			t.Fatalf("%s duplicate %d", name, id)
		}
		seen[id] = true
	}
}

func TestRandomSelectsKDistinct(t *testing.T) {
	r := NewRandom()
	r.Init(roster(20), stats.NewRNG(1))
	for epoch := 0; epoch < 100; epoch++ {
		sel := r.Select(epoch, allUp(20), 5)
		if len(sel) != 5 {
			t.Fatalf("selected %d", len(sel))
		}
		validSelection(t, "random", sel, allUp(20), 5)
	}
}

func TestRandomUniformCoverage(t *testing.T) {
	r := NewRandom()
	r.Init(roster(10), stats.NewRNG(2))
	counts := make([]int, 10)
	rounds := 5000
	for epoch := 0; epoch < rounds; epoch++ {
		for _, id := range r.Select(epoch, allUp(10), 2) {
			counts[id]++
		}
	}
	for id, c := range counts {
		want := float64(rounds) * 2 / 10
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Errorf("client %d selected %d times, want ~%v", id, c, want)
		}
	}
}

func TestRandomFewerAvailableThanK(t *testing.T) {
	r := NewRandom()
	r.Init(roster(5), stats.NewRNG(3))
	avail := []bool{true, false, false, true, false}
	sel := r.Select(0, avail, 4)
	if len(sel) != 2 {
		t.Fatalf("selected %v", sel)
	}
	validSelection(t, "random", sel, avail, 4)
}

func TestTiFLTiersOrderedByLatency(t *testing.T) {
	f := NewTiFL(5)
	f.Init(roster(50), stats.NewRNG(4))
	// With latencies = ID+1, tier must be non-decreasing in ID.
	prev := 0
	for id := 0; id < 50; id++ {
		tier := f.TierOf(id)
		if tier < prev {
			t.Fatalf("tiers not monotone: client %d tier %d after tier %d", id, tier, prev)
		}
		prev = tier
	}
	if f.TierOf(0) != 0 || f.TierOf(49) != 4 {
		t.Errorf("extreme tiers %d, %d", f.TierOf(0), f.TierOf(49))
	}
}

func TestTiFLSelectionValidAndFillsBudget(t *testing.T) {
	f := NewTiFL(5)
	f.Init(roster(50), stats.NewRNG(5))
	for epoch := 0; epoch < 200; epoch++ {
		sel := f.Select(epoch, allUp(50), 10)
		if len(sel) != 10 {
			t.Fatalf("epoch %d: selected %d", epoch, len(sel))
		}
		validSelection(t, "tifl", sel, allUp(50), 10)
		losses := make([]float64, len(sel))
		for i := range losses {
			losses[i] = 1.0
		}
		f.Update(epoch, sel, losses)
	}
}

func TestTiFLSpillsWhenTierSmallerThanK(t *testing.T) {
	f := NewTiFL(5)
	f.Init(roster(10), stats.NewRNG(6)) // tiers of 2 clients
	sel := f.Select(0, allUp(10), 6)
	if len(sel) != 6 {
		t.Fatalf("spill failed: %v", sel)
	}
	validSelection(t, "tifl", sel, allUp(10), 6)
}

func TestTiFLPrefersHighLossTiers(t *testing.T) {
	f := NewTiFL(2)
	f.Init(roster(10), stats.NewRNG(7))
	// Report high loss for slow-tier clients (5..9), low for fast tier.
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	losses := []float64{0.01, 0.01, 0.01, 0.01, 0.01, 10, 10, 10, 10, 10}
	f.Update(0, ids, losses)
	slowPicks, total := 0, 0
	for epoch := 1; epoch < 500; epoch++ {
		for _, id := range f.Select(epoch, allUp(10), 2) {
			if f.TierOf(id) == 1 {
				slowPicks++
			}
			total++
		}
	}
	frac := float64(slowPicks) / float64(total)
	if frac < 0.8 {
		t.Errorf("high-loss tier picked only %.0f%% of the time", frac*100)
	}
}

func TestTiFLCreditsExhaustionFallsBack(t *testing.T) {
	f := NewTiFL(2)
	f.CreditsPerTier = 1
	f.Init(roster(4), stats.NewRNG(8))
	// Two selections consume both tiers' credits; the third must still
	// produce a valid (fallback) selection.
	for epoch := 0; epoch < 5; epoch++ {
		sel := f.Select(epoch, allUp(4), 2)
		if len(sel) != 2 {
			t.Fatalf("epoch %d: selected %v", epoch, sel)
		}
		validSelection(t, "tifl", sel, allUp(4), 2)
	}
}

func TestTiFLDropoutHandled(t *testing.T) {
	f := NewTiFL(3)
	f.Init(roster(9), stats.NewRNG(9))
	avail := allUp(9)
	avail[0], avail[1], avail[2] = false, false, false // whole fast tier down
	for epoch := 0; epoch < 50; epoch++ {
		sel := f.Select(epoch, avail, 4)
		validSelection(t, "tifl", sel, avail, 4)
		if len(sel) != 4 {
			t.Fatalf("selected %d with 6 available", len(sel))
		}
	}
}

func TestOortExploresEveryoneEventually(t *testing.T) {
	o := NewOort()
	o.Init(roster(30), stats.NewRNG(10))
	trained := map[int]bool{}
	for epoch := 0; epoch < 100; epoch++ {
		sel := o.Select(epoch, allUp(30), 5)
		validSelection(t, "oort", sel, allUp(30), 5)
		losses := make([]float64, len(sel))
		for i := range losses {
			losses[i] = 1
		}
		o.Update(epoch, sel, losses)
		for _, id := range sel {
			trained[id] = true
		}
	}
	if len(trained) != 30 {
		t.Errorf("only %d/30 clients ever explored", len(trained))
	}
}

func TestOortExploitsHighLossClients(t *testing.T) {
	o := NewOort()
	o.EpsilonStart, o.EpsilonMin = 0, 0 // pure exploitation
	o.Init(roster(10), stats.NewRNG(11))
	// Mark everyone explored with low loss except clients 3 and 7.
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	losses := []float64{0.1, 0.1, 0.1, 5, 0.1, 0.1, 0.1, 5, 0.1, 0.1}
	o.Update(0, ids, losses)
	sel := o.Select(1, allUp(10), 2)
	want := map[int]bool{3: true, 7: true}
	for _, id := range sel {
		if !want[id] {
			t.Errorf("exploitation picked %d, want {3,7} (sel=%v)", id, sel)
		}
	}
}

func TestOortPenalizesSlowClients(t *testing.T) {
	o := NewOort()
	o.Init(roster(10), stats.NewRNG(12))
	// Equal loss everywhere: utility ordering must follow the system
	// penalty, so the slowest client (9) ranks below a fast one (0).
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ones := make([]float64, 10)
	for i := range ones {
		ones[i] = 1
	}
	o.Update(0, ids, ones)
	if o.Utility(9) >= o.Utility(0) {
		t.Errorf("slowest client utility %v >= fastest %v", o.Utility(9), o.Utility(0))
	}
	// Clients under the preferred duration carry no penalty: with the
	// 80th-percentile threshold, clients 0 and 1 are both unpenalized
	// and equal.
	if o.Utility(0) != o.Utility(1) {
		t.Errorf("unpenalized utilities differ: %v vs %v", o.Utility(0), o.Utility(1))
	}
}

func TestOortEpsilonDecays(t *testing.T) {
	o := NewOort()
	o.Init(roster(10), stats.NewRNG(13))
	start := o.epsilon
	for epoch := 0; epoch < 200; epoch++ {
		sel := o.Select(epoch, allUp(10), 3)
		losses := make([]float64, len(sel))
		o.Update(epoch, sel, losses)
	}
	if o.epsilon >= start {
		t.Error("epsilon did not decay")
	}
	if o.epsilon < o.EpsilonMin-1e-12 {
		t.Errorf("epsilon %v fell below floor %v", o.epsilon, o.EpsilonMin)
	}
}

func TestOortFewerAvailableThanK(t *testing.T) {
	o := NewOort()
	o.Init(roster(5), stats.NewRNG(14))
	avail := []bool{false, true, false, true, false}
	sel := o.Select(0, avail, 4)
	if len(sel) != 2 {
		t.Fatalf("selected %v", sel)
	}
	validSelection(t, "oort", sel, avail, 4)
}

func TestStrategyNames(t *testing.T) {
	if NewRandom().Name() != "random" || NewTiFL(0).Name() != "tifl" || NewOort().Name() != "oort" {
		t.Error("strategy name mismatch")
	}
}

var (
	_ fl.Strategy = (*Random)(nil)
	_ fl.Strategy = (*TiFL)(nil)
	_ fl.Strategy = (*Oort)(nil)
)
