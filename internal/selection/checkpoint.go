package selection

// Checkpoint support: each baseline strategy serializes exactly its
// mutable state (the structures Init derives deterministically from
// the roster — tiers, latencies, preferred durations — are rebuilt by
// Init and validated against on restore). The contract is
// restore-after-Init: RestoreState may only be called on a strategy
// whose Init ran with the same roster as the run that produced the
// snapshot, and it continues the RNG stream exactly where the snapshot
// captured it, making resumed selection sequences bit-identical.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"haccs/internal/stats"
)

// stateVersion versions the per-strategy gob payloads.
const stateVersion = 1

// randomState is Random's serialized mutable state.
type randomState struct {
	Version int
	RNG     stats.RNGState
}

// SnapshotState implements checkpoint.Snapshotter.
func (r *Random) SnapshotState() ([]byte, error) {
	if r.rng == nil {
		return nil, errors.New("selection: Random not initialized")
	}
	return encodeState(randomState{Version: stateVersion, RNG: r.rng.State()})
}

// RestoreState implements checkpoint.Snapshotter (restore-after-Init).
func (r *Random) RestoreState(data []byte) error {
	if r.rng == nil {
		return errors.New("selection: Random not initialized")
	}
	var st randomState
	if err := decodeState(data, &st); err != nil {
		return err
	}
	if err := checkVersion("Random", st.Version); err != nil {
		return err
	}
	r.rng.SetState(st.RNG)
	return nil
}

// tiflState is TiFL's serialized mutable state; tier structure is
// rebuilt by Init from the roster.
type tiflState struct {
	Version  int
	RNG      stats.RNGState
	Credits  []int
	LastLoss []float64
}

// SnapshotState implements checkpoint.Snapshotter.
func (t *TiFL) SnapshotState() ([]byte, error) {
	if t.rng == nil {
		return nil, errors.New("selection: TiFL not initialized")
	}
	return encodeState(tiflState{
		Version:  stateVersion,
		RNG:      t.rng.State(),
		Credits:  append([]int(nil), t.credits...),
		LastLoss: append([]float64(nil), t.lastLoss...),
	})
}

// RestoreState implements checkpoint.Snapshotter (restore-after-Init).
func (t *TiFL) RestoreState(data []byte) error {
	if t.rng == nil {
		return errors.New("selection: TiFL not initialized")
	}
	var st tiflState
	if err := decodeState(data, &st); err != nil {
		return err
	}
	if err := checkVersion("TiFL", st.Version); err != nil {
		return err
	}
	if len(st.Credits) != len(t.credits) || len(st.LastLoss) != len(t.lastLoss) {
		return fmt.Errorf("selection: TiFL snapshot for %d tiers/%d clients, strategy has %d/%d",
			len(st.Credits), len(st.LastLoss), len(t.credits), len(t.lastLoss))
	}
	copy(t.credits, st.Credits)
	copy(t.lastLoss, st.LastLoss)
	t.rng.SetState(st.RNG)
	return nil
}

// oortState is Oort's serialized mutable state; latencies, sample
// counts and the preferred duration are rebuilt by Init.
type oortState struct {
	Version  int
	RNG      stats.RNGState
	LastLoss []float64
	Explored []bool
	Epsilon  float64
}

// SnapshotState implements checkpoint.Snapshotter.
func (o *Oort) SnapshotState() ([]byte, error) {
	if o.rng == nil {
		return nil, errors.New("selection: Oort not initialized")
	}
	return encodeState(oortState{
		Version:  stateVersion,
		RNG:      o.rng.State(),
		LastLoss: append([]float64(nil), o.lastLoss...),
		Explored: append([]bool(nil), o.explored...),
		Epsilon:  o.epsilon,
	})
}

// RestoreState implements checkpoint.Snapshotter (restore-after-Init).
func (o *Oort) RestoreState(data []byte) error {
	if o.rng == nil {
		return errors.New("selection: Oort not initialized")
	}
	var st oortState
	if err := decodeState(data, &st); err != nil {
		return err
	}
	if err := checkVersion("Oort", st.Version); err != nil {
		return err
	}
	if len(st.LastLoss) != len(o.lastLoss) || len(st.Explored) != len(o.explored) {
		return fmt.Errorf("selection: Oort snapshot for %d clients, strategy has %d", len(st.LastLoss), len(o.lastLoss))
	}
	copy(o.lastLoss, st.LastLoss)
	copy(o.explored, st.Explored)
	o.epsilon = st.Epsilon
	o.rng.SetState(st.RNG)
	return nil
}

// encodeState gob-encodes one strategy-state struct.
func encodeState(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("selection: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeState parses a strategy-state struct.
func decodeState(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("selection: decode state: %w", err)
	}
	return nil
}

// checkVersion rejects payloads from a different state layout.
func checkVersion(who string, got int) error {
	if got != stateVersion {
		return fmt.Errorf("selection: %s state version %d, this build reads %d", who, got, stateVersion)
	}
	return nil
}
