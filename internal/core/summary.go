// Package core implements HACCS, the paper's contribution: privacy-
// preserving distribution summaries computed on clients, Hellinger-
// distance clustering of those summaries on the server, and the
// cluster-level scheduling policy that samples clusters by a convex
// combination of latency reduction and average loss, then picks the
// fastest available device within each sampled cluster.
package core

import (
	"fmt"
	"math"

	"haccs/internal/cluster"
	"haccs/internal/dataset"
	"haccs/internal/stats"
)

// SummaryKind selects which part of the factored joint distribution
// P(X, y) = P(y) · P(X|y) a client summarizes (paper eq. 2).
type SummaryKind int

const (
	// PY summarizes the marginal label distribution P(y) as a single
	// histogram over class labels — compact (Θ(c) bytes) and the least
	// privacy-sensitive choice.
	PY SummaryKind = iota
	// PXY summarizes the class-conditional feature distribution P(X|y)
	// as one feature-value histogram per class label present on the
	// device — Θ(c·p) bytes for p bins.
	PXY
)

// String implements fmt.Stringer.
func (k SummaryKind) String() string {
	switch k {
	case PY:
		return "P(y)"
	case PXY:
		return "P(X|y)"
	default:
		return fmt.Sprintf("SummaryKind(%d)", int(k))
	}
}

// Summary is a client's privacy-preserving data summary S(Z_i). Exactly
// one of Label (PY) or Feature (PXY) is populated.
type Summary struct {
	Kind SummaryKind
	// Label is the class-label histogram for PY summaries.
	Label *stats.Histogram
	// Feature holds one per-class feature histogram for PXY summaries;
	// entries for classes absent from the device are nil.
	Feature []*stats.Histogram
}

// DefaultFeatureBins is the per-class histogram resolution for PXY
// summaries.
const DefaultFeatureBins = 32

// Summarize computes S(Z) on a client's local dataset. bins is only used
// for PXY (pass 0 for the default).
func Summarize(d *dataset.Dataset, kind SummaryKind, bins int) Summary {
	switch kind {
	case PY:
		return Summary{Kind: PY, Label: d.LabelHistogram()}
	case PXY:
		if bins <= 0 {
			bins = DefaultFeatureBins
		}
		return Summary{Kind: PXY, Feature: d.FeatureHistograms(bins)}
	default:
		panic(fmt.Sprintf("core: unknown summary kind %d", int(kind)))
	}
}

// Noised returns a copy of the summary with Laplace-mechanism noise
// applied per histogram bin, making the release (eps, 0)-differentially
// private (paper §IV-B). eps <= 0 returns the summary unchanged (no
// privacy requested).
func (s Summary) Noised(eps float64, rng *stats.RNG) Summary {
	if eps <= 0 {
		return s
	}
	out := Summary{Kind: s.Kind}
	if s.Label != nil {
		out.Label = stats.LaplaceMechanism(s.Label, eps, rng)
	}
	if s.Feature != nil {
		out.Feature = make([]*stats.Histogram, len(s.Feature))
		for i, h := range s.Feature {
			if h != nil {
				out.Feature[i] = stats.LaplaceMechanism(h, eps, rng)
			}
		}
	}
	return out
}

// Bytes returns the simulated wire size of the summary (8 bytes per
// histogram bin), confirming the paper's Θ(c) vs Θ(c·p) comparison.
func (s Summary) Bytes() int {
	n := 0
	if s.Label != nil {
		n += 8 * s.Label.Bins()
	}
	for _, h := range s.Feature {
		if h != nil {
			n += 8 * h.Bins()
		}
	}
	return n
}

// Distance is the paper's d(S(Z_a), S(Z_b)): the Hellinger distance for
// PY summaries and the average per-class Hellinger distance for PXY
// summaries (eq. 3). Both summaries must have the same kind.
//
// For PXY the per-class terms are weighted by the class's prevalence on
// the two clients (the histograms' mass), a refinement over the paper's
// plain average: an unweighted mean is blind to class proportions, so
// two clients holding the same class *set* in wildly different ratios
// would measure as identical. Prevalence weighting keeps the summary
// sensitive to both conditional feature differences (e.g. rotation) and
// the composition of the local data. Classes present on only one side
// contribute the maximal distance 1 at that side's weight.
func Distance(a, b Summary) float64 {
	if a.Kind != b.Kind {
		panic("core: Distance across summary kinds")
	}
	switch a.Kind {
	case PY:
		return stats.HistogramHellinger(a.Label, b.Label)
	case PXY:
		return weightedAverageHellinger(a.Feature, b.Feature)
	default:
		panic("core: Distance on malformed summary")
	}
}

// weightedAverageHellinger computes the prevalence-weighted mean
// Hellinger distance across two parallel per-class histogram sets.
// Noised histograms can carry negative mass; weights clamp at zero.
func weightedAverageHellinger(a, b []*stats.Histogram) float64 {
	if len(a) != len(b) {
		panic("core: PXY summaries with different class counts")
	}
	num, den := 0.0, 0.0
	for c := range a {
		wa, wb := 0.0, 0.0
		if a[c] != nil {
			wa = math.Max(0, a[c].Total())
		}
		if b[c] != nil {
			wb = math.Max(0, b[c].Total())
		}
		w := wa + wb
		if w <= 0 {
			continue
		}
		d := 1.0
		if a[c] != nil && b[c] != nil {
			d = stats.HistogramHellinger(a[c], b[c])
		}
		num += w * d
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// amplitudes caches the per-summary quantities every pairwise distance
// needs, so the O(N²) matrix build pays the normalize+sqrt work O(N)
// times instead of once per pair. For PY the single amplitude vector is
// the whole story; for PXY the per-class amplitude vectors and clamped
// class masses feed the prevalence-weighted average.
type amplitudes struct {
	kind     SummaryKind
	joint    []float64   // PY: √P(y)
	perClass [][]float64 // PXY: per-class √P(X|c), nil where the class is absent
	mass     []float64   // PXY: clamped per-class mass (the prevalence weights)
}

// summaryAmplitudes precomputes one amplitudes record per summary.
func summaryAmplitudes(summaries []Summary) []amplitudes {
	out := make([]amplitudes, len(summaries))
	for i, s := range summaries {
		out[i] = amplitudes{kind: s.Kind}
		switch s.Kind {
		case PY:
			out[i].joint = s.Label.Amplitude()
		case PXY:
			out[i].perClass = make([][]float64, len(s.Feature))
			out[i].mass = make([]float64, len(s.Feature))
			for c, h := range s.Feature {
				if h != nil {
					out[i].perClass[c] = h.Amplitude()
					out[i].mass[c] = math.Max(0, h.Total())
				}
			}
		default:
			panic("core: amplitudes on malformed summary")
		}
	}
	return out
}

// distance computes the same value as Distance(a, b) — bit for bit, the
// float64 operations are identical — from the precomputed amplitudes.
func (a *amplitudes) distance(b *amplitudes) float64 {
	if a.kind == PY {
		return stats.AmplitudeDistance(a.joint, b.joint)
	}
	if len(a.perClass) != len(b.perClass) {
		panic("core: PXY summaries with different class counts")
	}
	num, den := 0.0, 0.0
	for c := range a.perClass {
		w := a.mass[c] + b.mass[c]
		if w <= 0 {
			continue
		}
		d := 1.0
		if a.perClass[c] != nil && b.perClass[c] != nil {
			d = stats.AmplitudeDistance(a.perClass[c], b.perClass[c])
		}
		num += w * d
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// DistanceMatrix computes all pairwise summary distances — the server's
// first step before clustering (Algorithm 1's distMatrix). Each client's
// amplitude (√p) vectors are computed once and shared across all N−1
// pairs they appear in; the pair loop itself is banded across workers by
// cluster.FromFunc's strided rows.
func DistanceMatrix(summaries []Summary) *cluster.Matrix {
	pre := summaryAmplitudes(summaries)
	return cluster.FromFunc(len(summaries), func(i, j int) float64 {
		return pre[i].distance(&pre[j])
	})
}

// BuildSummaries computes each client dataset's summary, applying
// (eps, 0)-differential privacy when eps > 0. The noise stream is drawn
// per client from the provided RNG.
func BuildSummaries(trainSets []*dataset.Dataset, kind SummaryKind, bins int, eps float64, rng *stats.RNG) []Summary {
	out := make([]Summary, len(trainSets))
	for i, d := range trainSets {
		out[i] = Summarize(d, kind, bins).Noised(eps, rng)
	}
	return out
}
