package core

import (
	"math"
	"testing"

	"haccs/internal/dataset"
	"haccs/internal/stats"
)

func makeClientSet(t *testing.T, major int, n int) *dataset.Dataset {
	t.Helper()
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 5, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 11)
	ld := dataset.MajorityNoise(major, 0.75, []int{(major + 1) % 5, (major + 2) % 5, (major + 3) % 5}, dataset.DefaultMajorityFractions)
	rng := stats.NewRNG(uint64(major)*31 + uint64(n))
	return gen.Generate(ld.Draw(n, rng), rng)
}

func TestSummaryKindString(t *testing.T) {
	if PY.String() != "P(y)" || PXY.String() != "P(X|y)" {
		t.Errorf("kind strings %q %q", PY.String(), PXY.String())
	}
}

func TestSummarizePY(t *testing.T) {
	d := makeClientSet(t, 2, 400)
	s := Summarize(d, PY, 0)
	if s.Kind != PY || s.Label == nil || s.Feature != nil {
		t.Fatal("malformed PY summary")
	}
	if s.Label.Bins() != 5 {
		t.Errorf("PY bins = %d", s.Label.Bins())
	}
	p := s.Label.Normalize()
	if stats.ArgMaxFloat(p) != 2 {
		t.Errorf("majority label not dominant: %v", p)
	}
}

func TestSummarizePXY(t *testing.T) {
	d := makeClientSet(t, 1, 200)
	s := Summarize(d, PXY, 16)
	if s.Kind != PXY || s.Feature == nil || s.Label != nil {
		t.Fatal("malformed PXY summary")
	}
	if len(s.Feature) != 5 {
		t.Fatalf("PXY classes = %d", len(s.Feature))
	}
	if s.Feature[1] == nil {
		t.Error("majority class histogram missing")
	}
	// The class never drawn must be nil: label 0 is not in the noise set
	// of major=1 ({2,3,4}).
	if s.Feature[0] != nil {
		t.Error("absent class has a histogram")
	}
}

func TestSummarizeDefaultBins(t *testing.T) {
	d := makeClientSet(t, 0, 50)
	s := Summarize(d, PXY, 0)
	for _, h := range s.Feature {
		if h != nil && h.Bins() != DefaultFeatureBins {
			t.Errorf("default bins = %d", h.Bins())
		}
	}
}

func TestSummaryBytes(t *testing.T) {
	d := makeClientSet(t, 0, 100)
	py := Summarize(d, PY, 0)
	pxy := Summarize(d, PXY, 32)
	if py.Bytes() != 8*5 {
		t.Errorf("PY bytes = %d", py.Bytes())
	}
	// PXY is Θ(c·p): strictly larger than PY (paper §IV-A).
	if pxy.Bytes() <= py.Bytes() {
		t.Errorf("PXY (%d bytes) not larger than PY (%d bytes)", pxy.Bytes(), py.Bytes())
	}
}

func TestNoisedZeroEpsilonIsIdentity(t *testing.T) {
	d := makeClientSet(t, 0, 100)
	s := Summarize(d, PY, 0)
	n := s.Noised(0, stats.NewRNG(1))
	for i := range s.Label.Counts {
		if n.Label.Counts[i] != s.Label.Counts[i] {
			t.Fatal("eps=0 modified summary")
		}
	}
}

func TestNoisedDoesNotMutateOriginal(t *testing.T) {
	d := makeClientSet(t, 0, 100)
	s := Summarize(d, PY, 0)
	before := append([]float64(nil), s.Label.Counts...)
	_ = s.Noised(0.1, stats.NewRNG(2))
	for i := range before {
		if s.Label.Counts[i] != before[i] {
			t.Fatal("Noised mutated the original summary")
		}
	}
}

func TestNoisedPXY(t *testing.T) {
	d := makeClientSet(t, 1, 100)
	s := Summarize(d, PXY, 8)
	n := s.Noised(0.5, stats.NewRNG(3))
	if n.Feature[0] != nil {
		t.Error("noise materialized an absent class")
	}
	changed := false
	for c := range s.Feature {
		if s.Feature[c] == nil {
			continue
		}
		for i := range s.Feature[c].Counts {
			if n.Feature[c].Counts[i] != s.Feature[c].Counts[i] {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("noise did not alter any bin")
	}
}

func TestDistanceSameClientZero(t *testing.T) {
	d := makeClientSet(t, 3, 300)
	for _, kind := range []SummaryKind{PY, PXY} {
		s := Summarize(d, kind, 16)
		if dist := Distance(s, s); dist > 1e-12 {
			t.Errorf("%v self distance %v", kind, dist)
		}
	}
}

func TestDistanceSeparatesMajorities(t *testing.T) {
	a1 := Summarize(makeClientSet(t, 0, 400), PY, 0)
	a2 := Summarize(makeClientSet(t, 0, 500), PY, 0)
	b := Summarize(makeClientSet(t, 4, 400), PY, 0)
	same := Distance(a1, a2)
	diff := Distance(a1, b)
	if same >= diff {
		t.Errorf("same-majority distance %v >= cross-majority %v", same, diff)
	}
	if diff < 0.3 {
		t.Errorf("cross-majority distance %v suspiciously small", diff)
	}
}

func TestDistanceKindMismatchPanics(t *testing.T) {
	d := makeClientSet(t, 0, 50)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Distance(Summarize(d, PY, 0), Summarize(d, PXY, 8))
}

func TestDistanceMatrixSymmetricBounded(t *testing.T) {
	var sums []Summary
	for major := 0; major < 5; major++ {
		sums = append(sums, Summarize(makeClientSet(t, major, 200), PY, 0))
	}
	m := DistanceMatrix(sums)
	for i := 0; i < m.Len(); i++ {
		for j := 0; j < m.Len(); j++ {
			d := m.At(i, j)
			if d < 0 || d > 1 {
				t.Fatalf("distance (%d,%d) = %v outside [0,1]", i, j, d)
			}
			if math.Abs(d-m.At(j, i)) > 1e-15 {
				t.Fatalf("asymmetric matrix")
			}
		}
	}
}

func TestBuildSummaries(t *testing.T) {
	sets := []*dataset.Dataset{makeClientSet(t, 0, 100), makeClientSet(t, 1, 100)}
	sums := BuildSummaries(sets, PY, 0, 0, stats.NewRNG(4))
	if len(sums) != 2 || sums[0].Kind != PY {
		t.Fatal("BuildSummaries malformed output")
	}
	noised := BuildSummaries(sets, PY, 0, 0.1, stats.NewRNG(5))
	diff := false
	for i := range noised[0].Label.Counts {
		if noised[0].Label.Counts[i] != sums[0].Label.Counts[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("eps>0 did not add noise")
	}
}
