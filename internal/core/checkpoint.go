package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"haccs/internal/cluster"
	"haccs/internal/stats"
)

// schedulerStateVersion versions the scheduler's gob payload. Version 2
// added the per-cluster baseline centroids behind the fleet drift gauge.
const schedulerStateVersion = 2

// schedulerState is the HACCS scheduler's serialized mutable state:
// the Weighted-SRSWR RNG stream, every client's last observed loss
// (the ACL inputs), the cluster assignment in force when the snapshot
// was taken, and the label-distribution centroids captured at cluster
// time. Latencies and summaries are rebuilt by Init; the labels and
// baselines are restored rather than re-derived so a snapshot taken
// after a §IV-C UpdateSummaries re-clustering resumes with the same
// clusters — and the same drift reference — the interrupted run was
// scheduling over.
type schedulerState struct {
	Version   int
	RNG       stats.RNGState
	LastLoss  []float64
	Labels    []int
	Baselines [][]float64
}

// SnapshotState implements checkpoint.Snapshotter.
func (s *Scheduler) SnapshotState() ([]byte, error) {
	if s.rng == nil {
		return nil, errors.New("core: scheduler not initialized")
	}
	s.mu.Lock()
	labels := append([]int(nil), s.labels...)
	baselines := make([][]float64, len(s.baseline))
	for i, b := range s.baseline {
		baselines[i] = append([]float64(nil), b...)
	}
	s.mu.Unlock()
	st := schedulerState{
		Version:   schedulerStateVersion,
		RNG:       s.rng.State(),
		LastLoss:  append([]float64(nil), s.lastLoss...),
		Labels:    labels,
		Baselines: baselines,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("core: encode scheduler state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements checkpoint.Snapshotter (restore-after-Init:
// Init must have run with the same roster and summaries as the run
// that produced the snapshot).
func (s *Scheduler) RestoreState(data []byte) error {
	if s.rng == nil {
		return errors.New("core: scheduler not initialized")
	}
	var st schedulerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("core: decode scheduler state: %w", err)
	}
	if st.Version != schedulerStateVersion {
		return fmt.Errorf("core: scheduler state version %d, this build reads %d", st.Version, schedulerStateVersion)
	}
	if len(st.LastLoss) != len(s.lastLoss) || len(st.Labels) != len(s.summaries) {
		return fmt.Errorf("core: scheduler snapshot for %d clients, scheduler has %d", len(st.Labels), len(s.summaries))
	}
	copy(s.lastLoss, st.LastLoss)
	s.mu.Lock()
	s.labels = append(s.labels[:0], st.Labels...)
	s.clusters = cluster.Members(s.labels)
	s.baseline = st.Baselines
	s.mu.Unlock()
	s.rng.SetState(st.RNG)
	return nil
}
