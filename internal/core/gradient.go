package core

import (
	"math"

	"haccs/internal/cluster"
	"haccs/internal/dataset"
	"haccs/internal/nn"
)

// The paper's §IV-A discusses a third possible summary family —
// "gradients of the loss function or model weights" — and rejects it:
// gradients change every training epoch, so summaries would need to be
// re-communicated and re-clustered continuously. This file implements
// that alternative so the trade-off can be measured rather than assumed
// (see experiments.RunGradientAblation): gradient clusters are accurate
// at any single round but their assignments drift as the model moves,
// while P(y)/P(X|y) summaries are stable for the whole run.

// GradientSummary computes a client's loss gradient at the given global
// parameters over its full local dataset, L2-normalized so only the
// descent *direction* is compared. The model is scratch space owned by
// the caller; its parameters are overwritten.
func GradientSummary(model *nn.Network, globalParams []float64, d *dataset.Dataset) []float64 {
	model.SetParamsVector(globalParams)
	model.ZeroGrads()
	logits := model.Forward(d.X)
	_, grad := nn.SoftmaxCrossEntropy(logits, d.Y)
	model.Backward(grad)
	g := model.GradsVector()
	norm := 0.0
	for _, v := range g {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for i := range g {
			g[i] /= norm
		}
	}
	return g
}

// CosineDistance maps the cosine similarity of two direction vectors
// into a [0, 1] distance: 0 for identical directions, 0.5 for
// orthogonal, 1 for opposite. Inputs need not be normalized.
func CosineDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("core: CosineDistance length mismatch")
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0.5 // no direction information: treat as orthogonal
	}
	cos := dot / math.Sqrt(na*nb)
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	return (1 - cos) / 2
}

// GradientDistanceMatrix computes pairwise cosine distances between
// gradient summaries.
func GradientDistanceMatrix(grads [][]float64) *cluster.Matrix {
	return cluster.FromFunc(len(grads), func(i, j int) float64 {
		return CosineDistance(grads[i], grads[j])
	})
}

// ClusterGradients runs the server-side pipeline on gradient summaries:
// OPTICS + silhouette extraction with noise singletonized, mirroring the
// histogram path.
func ClusterGradients(grads [][]float64, minPts int) []int {
	if minPts <= 0 {
		minPts = 2
	}
	m := GradientDistanceMatrix(grads)
	res := cluster.OPTICS(m, minPts, math.Inf(1))
	labels := res.ExtractBestSilhouette(m, pxyMinSilhouette)
	next := 0
	for _, l := range labels {
		if l >= next {
			next = l + 1
		}
	}
	for i, l := range labels {
		if l == cluster.Noise {
			labels[i] = next
			next++
		}
	}
	return labels
}
