package core

import (
	"testing"

	"haccs/internal/cluster"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/stats"
)

// sketchFixture mirrors testFixture (12 clients, 4 majority-label
// groups) on the sketch backend.
func sketchFixture(t *testing.T, kind SummaryKind, opts SketchOptions) (*Scheduler, []fl.ClientInfo) {
	t.Helper()
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 8, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 21)
	rng := stats.NewRNG(22)
	var sums []Summary
	var infos []fl.ClientInfo
	id := 0
	for major := 0; major < 4; major++ {
		for k := 0; k < 3; k++ {
			noise := []int{(major + 4) % 8, (major + 5) % 8, (major + 6) % 8}
			ld := dataset.MajorityNoise(major, 0.75, noise, dataset.DefaultMajorityFractions)
			d := gen.Generate(ld.Draw(300, rng), rng)
			sums = append(sums, Summarize(d, kind, 16))
			infos = append(infos, fl.ClientInfo{ID: id, Latency: float64(1 + id), NumSamples: 300})
			id++
		}
	}
	sched := NewScheduler(Config{Kind: kind, Rho: 0.5, Backend: SketchBackend, Sketch: opts}, sums)
	sched.Init(infos, stats.NewRNG(23))
	return sched, infos
}

// TestSketchBackendMatchesDenseGroups: on the well-separated fixture
// the sketch backend must recover the same grouping the dense backend
// does (ARI = 1 against the ground-truth majority groups).
func TestSketchBackendMatchesDenseGroups(t *testing.T) {
	truth := make([]int, 12)
	for i := range truth {
		truth[i] = i / 3
	}
	for _, kind := range []SummaryKind{PY, PXY} {
		s, _ := sketchFixture(t, kind, SketchOptions{})
		labels := s.ClusterLabels()
		if ari := cluster.AdjustedRand(labels, truth); ari < 1 {
			t.Errorf("%v: sketch clustering ARI %v vs ground truth (labels %v)", kind, ari, labels)
		}
	}
}

// TestSketchBackendNoDenseMatrix: the sketch path's representative
// count must stay near the number of distinct distributions, far below
// the client count — the structural guarantee that no N-sized pairwise
// work happens.
func TestSketchBackendRepresentativeCompression(t *testing.T) {
	s, _ := sketchFixture(t, PY, SketchOptions{})
	st := s.SelectionState()
	if st.Backend != "sketch" {
		t.Fatalf("backend %q, want sketch", st.Backend)
	}
	if st.Sketch == nil {
		t.Fatal("SelectionState has no sketch view on the sketch backend")
	}
	if k := st.Sketch.Representatives; k < 4 || k > 8 {
		t.Errorf("12 clients in 4 groups produced %d representatives, want 4..8", k)
	}
	if got := len(st.Sketch.Assignments); got != 12 {
		t.Errorf("assignment vector has %d entries, want 12", got)
	}
	total := 0
	for _, c := range st.Sketch.RepCounts {
		total += c
	}
	if total != 12 {
		t.Errorf("representative counts sum to %d, want 12", total)
	}
	if st.Sketch.Reclusters != 1 {
		t.Errorf("reclusters = %d after Init, want 1", st.Sketch.Reclusters)
	}
}

// TestSketchBackendIncrementalUpdate: a small summary update must route
// incrementally (no full recluster) while still moving the client to
// the cluster whose distribution it now matches.
func TestSketchBackendIncrementalUpdate(t *testing.T) {
	s, _ := sketchFixture(t, PY, SketchOptions{DriftThreshold: -1}) // drift reclustering off
	before := s.SelectionState().Sketch.Reclusters

	// Client 0 (group 0) now reports group-3-shaped data.
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 8, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 99)
	rng := stats.NewRNG(98)
	ld := dataset.MajorityNoise(3, 0.75, []int{7, 0, 1}, dataset.DefaultMajorityFractions)
	d := gen.Generate(ld.Draw(300, rng), rng)
	s.UpdateSummaries(map[int]Summary{0: Summarize(d, PY, 16)})

	st := s.SelectionState()
	if st.Sketch.Reclusters != before {
		t.Errorf("incremental update triggered a full recluster (%d -> %d)", before, st.Sketch.Reclusters)
	}
	labels := s.ClusterLabels()
	if labels[0] != labels[9] {
		t.Errorf("client 0 now holds group-3 data but sits in cluster %d, group 3 is cluster %d (labels %v)",
			labels[0], labels[9], labels)
	}
	// Clients 1 and 2 still form the old group-0 cluster.
	if labels[1] != labels[2] || labels[1] == labels[0] {
		t.Errorf("group-0 remnant broken: labels %v", labels)
	}
}

// TestSketchBackendDriftRecluster: when updates shift enough of a
// cluster's distribution, the drift policy must force a full recluster.
func TestSketchBackendDriftRecluster(t *testing.T) {
	s, _ := sketchFixture(t, PY, SketchOptions{DriftThreshold: 0.05})
	before := s.SelectionState().Sketch.Reclusters

	// Move all three group-0 clients to a brand-new majority label, a
	// large centroid shift for their cluster.
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 8, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 77)
	rng := stats.NewRNG(76)
	updates := map[int]Summary{}
	for id := 0; id < 3; id++ {
		ld := dataset.MajorityNoise(5, 0.75, []int{1, 2, 3}, dataset.DefaultMajorityFractions)
		d := gen.Generate(ld.Draw(300, rng), rng)
		updates[id] = Summarize(d, PY, 16)
	}
	s.UpdateSummaries(updates)

	if after := s.SelectionState().Sketch.Reclusters; after <= before {
		t.Errorf("large drift did not trigger a recluster (%d -> %d)", before, after)
	}
	// After the recluster the moved clients form their own cluster.
	labels := s.ClusterLabels()
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("moved clients split after recluster: %v", labels)
	}
}

// TestSketchBackendSelectSchedules: the sampled-cluster scheduling loop
// runs unchanged on sketch-backed clusters.
func TestSketchBackendSelectSchedules(t *testing.T) {
	s, _ := sketchFixture(t, PY, SketchOptions{})
	sel := s.Select(0, allAvailable(12), 4)
	if len(sel) != 4 {
		t.Fatalf("selected %d clients, want 4", len(sel))
	}
	seen := map[int]bool{}
	for _, id := range sel {
		if id < 0 || id >= 12 || seen[id] {
			t.Fatalf("bad selection %v", sel)
		}
		seen[id] = true
	}
}

// TestSketchCheckpointRoundTrip: snapshot → restore into a freshly
// built scheduler must reproduce labels, representative geometry, and
// subsequent routing decisions exactly.
func TestSketchCheckpointRoundTrip(t *testing.T) {
	s1, _ := sketchFixture(t, PY, SketchOptions{})
	extra := s1.ExtraComponents()
	if len(extra) != 1 || extra[0].Name != "sketch" {
		t.Fatalf("ExtraComponents = %v, want one sketch component", extra)
	}
	stratBlob, err := s1.SnapshotState()
	if err != nil {
		t.Fatalf("SnapshotState: %v", err)
	}
	sketchBlob, err := extra[0].S.SnapshotState()
	if err != nil {
		t.Fatalf("sketch SnapshotState: %v", err)
	}

	s2, _ := sketchFixture(t, PY, SketchOptions{})
	if err := s2.RestoreState(stratBlob); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if err := s2.ExtraComponents()[0].S.RestoreState(sketchBlob); err != nil {
		t.Fatalf("sketch RestoreState: %v", err)
	}

	l1, l2 := s1.ClusterLabels(), s2.ClusterLabels()
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("labels diverge after restore: %v vs %v", l1, l2)
		}
	}
	st1, st2 := s1.SelectionState().Sketch, s2.SelectionState().Sketch
	if st1.Representatives != st2.Representatives || st1.Reclusters != st2.Reclusters {
		t.Fatalf("sketch state diverges after restore: %+v vs %+v", st1, st2)
	}

	// Both schedulers must make identical decisions on the same update.
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 8, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 55)
	rng := stats.NewRNG(54)
	ld := dataset.MajorityNoise(2, 0.75, []int{6, 7, 0}, dataset.DefaultMajorityFractions)
	d := gen.Generate(ld.Draw(300, rng), rng)
	upd := Summarize(d, PY, 16)
	s1.UpdateSummaries(map[int]Summary{5: upd})
	s2.UpdateSummaries(map[int]Summary{5: upd})
	l1, l2 = s1.ClusterLabels(), s2.ClusterLabels()
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("post-restore update diverges: %v vs %v", l1, l2)
		}
	}
}

// TestDenseBackendHasNoSketchComponent: dense runs must not list the
// sketch component, keeping their snapshots readable by older builds.
func TestDenseBackendHasNoSketchComponent(t *testing.T) {
	s, _ := testFixture(t, PY)
	if extra := s.ExtraComponents(); extra != nil {
		t.Fatalf("dense backend lists extra components %v", extra)
	}
	if st := s.SelectionState(); st.Backend != "dense" || st.Sketch != nil {
		t.Fatalf("dense SelectionState reports backend %q, sketch %v", st.Backend, st.Sketch)
	}
}
