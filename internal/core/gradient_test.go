package core

import (
	"math"
	"testing"

	"haccs/internal/cluster"
	"haccs/internal/dataset"
	"haccs/internal/nn"
	"haccs/internal/stats"
)

func TestCosineDistanceKnownValues(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 0},
		{[]float64{1, 0}, []float64{-1, 0}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0.5},
		{[]float64{2, 0}, []float64{5, 0}, 0}, // scale invariant
		{[]float64{0, 0}, []float64{1, 0}, 0.5},
	}
	for _, c := range cases {
		got := CosineDistance(c.a, c.b)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CosineDistance(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCosineDistanceSymmetricBounded(t *testing.T) {
	rng := stats.NewRNG(1)
	for trial := 0; trial < 200; trial++ {
		a := make([]float64, 8)
		b := make([]float64, 8)
		for i := range a {
			a[i] = rng.Normal(0, 1)
			b[i] = rng.Normal(0, 1)
		}
		d1, d2 := CosineDistance(a, b), CosineDistance(b, a)
		if d1 < 0 || d1 > 1 {
			t.Fatalf("distance %v out of [0,1]", d1)
		}
		if math.Abs(d1-d2) > 1e-12 {
			t.Fatal("asymmetric")
		}
		if CosineDistance(a, a) > 1e-12 {
			t.Fatal("self distance nonzero")
		}
	}
}

func TestCosineDistanceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CosineDistance([]float64{1}, []float64{1, 2})
}

func TestGradientSummaryNormalized(t *testing.T) {
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 6, Width: 6, Classes: 4, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 1)
	rng := stats.NewRNG(2)
	d := gen.Generate([]int{0, 1, 2, 3, 0, 1}, rng)
	arch := nn.Arch{Kind: "mlp", In: 36, Hidden: []int{8}, Classes: 4}
	model := arch.Build(stats.NewRNG(3))
	g := GradientSummary(model, model.ParamsVector(), d)
	if len(g) != model.NumParams() {
		t.Fatalf("gradient length %d, want %d", len(g), model.NumParams())
	}
	norm := 0.0
	for _, v := range g {
		norm += v * v
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
		t.Errorf("gradient not unit norm: %v", math.Sqrt(norm))
	}
}

func TestGradientSummariesClusterByMajority(t *testing.T) {
	// Clients sharing a majority label have similar descent directions
	// at a common model — the premise of gradient-based clustered FL.
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 6, Width: 6, Classes: 6, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 5)
	rng := stats.NewRNG(6)
	arch := nn.Arch{Kind: "mlp", In: 36, Hidden: []int{16}, Classes: 6}
	model := arch.Build(stats.NewRNG(7))
	params := model.ParamsVector()
	var grads [][]float64
	var truth []int
	for major := 0; major < 3; major++ {
		for k := 0; k < 3; k++ {
			ld := dataset.MajorityNoise(major, 0.75, []int{(major + 3) % 6, (major + 4) % 6, (major + 5) % 6}, dataset.DefaultMajorityFractions)
			d := gen.Generate(ld.Draw(300, rng), rng)
			grads = append(grads, GradientSummary(model, params, d))
			truth = append(truth, major)
		}
	}
	labels := ClusterGradients(grads, 2)
	if cluster.NumClusters(labels) != 3 {
		t.Fatalf("gradient clustering found %d clusters, want 3: %v", cluster.NumClusters(labels), labels)
	}
	if cluster.ExactRecovery(labels, truth) != 1 {
		t.Errorf("gradient clusters do not match majority groups: %v", labels)
	}
}

func TestClusterGradientsSingletonizesNoise(t *testing.T) {
	// Three well-aligned directions plus one opposite outlier.
	grads := [][]float64{
		{1, 0.01, 0}, {1, -0.01, 0}, {1, 0, 0.01},
		{-1, 0, 0},
	}
	labels := ClusterGradients(grads, 2)
	for i, l := range labels {
		if l == cluster.Noise {
			t.Fatalf("client %d left as noise", i)
		}
	}
	if labels[3] == labels[0] {
		t.Error("outlier merged into the aligned cluster")
	}
}
