package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"haccs/internal/checkpoint"
	"haccs/internal/cluster"
	"haccs/internal/introspect"
	"haccs/internal/sketch"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// ClusterBackend selects how the scheduler turns summaries into
// clusters.
type ClusterBackend int

const (
	// DenseBackend is the published Algorithm 1 pipeline: the full N×N
	// pairwise Hellinger matrix clustered directly with OPTICS. Exact,
	// but O(N²) time and memory — fine to a few thousand clients.
	DenseBackend ClusterBackend = iota
	// SketchBackend replaces the pairwise matrix with fixed-size
	// distribution sketches and a representative index: each client is
	// assigned to the nearest of K ≪ N representatives in O(K·Dim),
	// OPTICS runs over the K representatives only, and summary updates
	// reassign incrementally without a global re-clustering (a full
	// recluster triggers only when a cluster's label-distribution drift
	// exceeds SketchOptions.DriftThreshold). O(N·K) total, no N×N
	// allocation anywhere.
	SketchBackend
)

// String implements fmt.Stringer.
func (b ClusterBackend) String() string {
	switch b {
	case DenseBackend:
		return "dense"
	case SketchBackend:
		return "sketch"
	default:
		return fmt.Sprintf("ClusterBackend(%d)", int(b))
	}
}

// ParseClusterBackend maps the CLI spelling to a backend.
func ParseClusterBackend(s string) (ClusterBackend, error) {
	switch s {
	case "dense":
		return DenseBackend, nil
	case "sketch":
		return SketchBackend, nil
	default:
		return DenseBackend, fmt.Errorf("core: unknown cluster backend %q (want dense or sketch)", s)
	}
}

// DefaultDriftThreshold is the per-cluster Hellinger drift (current
// label centroid vs. the centroid captured at cluster time — the same
// gauge the fleet registry exports) above which the sketch backend
// abandons incremental assignment and re-clusters from scratch.
const DefaultDriftThreshold = 0.1

// SketchOptions parameterizes the sketch backend. The zero value is
// fully usable: default sketch width, seed 0, the index's default
// attach radius, and DefaultDriftThreshold.
type SketchOptions struct {
	// Dim is the sketch width (0 selects sketch.DefaultDim).
	Dim int
	// Seed drives the sketch projection; any fixed value is fine, equal
	// values give bit-identical sketches.
	Seed uint64
	// AttachRadius is the sketch-space distance within which a client
	// attaches to an existing representative (0 selects
	// sketch.DefaultAttachRadius).
	AttachRadius float64
	// DriftThreshold triggers a full recluster when any cluster's
	// label-centroid Hellinger drift exceeds it (0 selects
	// DefaultDriftThreshold, negative disables drift reclustering).
	DriftThreshold float64
}

// introspectAssignCap bounds the per-client assignment vector exposed
// on /debug/selection; fleets past this size report only the
// representative-level state.
const introspectAssignCap = 2048

// sketchState is the scheduler's sketch-backend working state. All
// fields are written on the round-driver loop under Scheduler.mu
// (SelectionState and the checkpoint layer read them concurrently).
//
// Encoding per summary kind:
//
//   - P(y): the encoded vector is the sketch of the label amplitude
//     √P(y) — width Dim, compared with the default Euclidean/√2 sketch
//     distance, which is exactly Hellinger whenever the class count
//     fits the sketch (the common case).
//   - P(X|y): one sketch block of width blockDim per class (the
//     sketched per-class amplitude √P(X|c)) followed by one clamped
//     mass entry per class (-1 marks a class absent from the device).
//     pxyMetric recombines the blocks with the same prevalence-weighted
//     average the dense path computes — bit-identical to it when the
//     feature bins fit the block, a low-error estimate otherwise. A
//     flat joint embedding cannot express this metric (the weights
//     depend on both endpoints), which is why the encoding keeps the
//     per-class structure.
type sketchState struct {
	sketcher *sketch.Sketcher
	index    *sketch.Index
	metric   sketch.Metric // nil for P(y); pxyMetric for P(X|y)
	attach   float64       // resolved attach radius (kind-dependent default)
	classes  int           // P(X|y): class count
	// width is the encoded-vector width: Dim for P(y),
	// classes·blockDim + classes for P(X|y).
	width int
	// amp and scratch are reusable buffers for the amplitude and
	// encoded vector of one client — the steady-state assignment path
	// allocates nothing.
	amp     []float64
	scratch []float64
	// repLabels maps representative -> cluster label; representatives
	// born after the last full recluster get fresh singleton labels.
	repLabels []int
	nextLabel int
	// reclusters counts full re-clusterings since Init (drift triggers
	// and explicit ones alike).
	reclusters int
}

// pxyMetric computes, over two encoded P(X|y) vectors, the identical
// prevalence-weighted average the dense path's Distance computes over
// raw summaries (see weightedAverageHellinger): per-class Hellinger
// distances weighted by the classes' clamped mass on the two clients,
// classes present on only one side contributing the maximal distance 1.
type pxyMetric struct {
	classes  int
	blockDim int
}

// Distance implements sketch.Metric without allocating.
func (m pxyMetric) Distance(a, b []float64) float64 {
	massA := a[m.classes*m.blockDim:]
	massB := b[m.classes*m.blockDim:]
	num, den := 0.0, 0.0
	for c := 0; c < m.classes; c++ {
		wa, wb := math.Max(0, massA[c]), math.Max(0, massB[c])
		w := wa + wb
		if w <= 0 {
			continue
		}
		d := 1.0
		if massA[c] >= 0 && massB[c] >= 0 {
			d = stats.AmplitudeDistance(a[c*m.blockDim:(c+1)*m.blockDim], b[c*m.blockDim:(c+1)*m.blockDim])
		}
		num += w * d
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// pxyAttachRadius is the default attach radius on the P(X|y) metric.
// The prevalence-weighted average compresses distances relative to raw
// Hellinger — per-class sampling noise is averaged down — so both
// within-distribution spread and between-distribution separation sit
// much lower than on the P(y) scale (the same compression that makes
// pxyMinSilhouette lower than the default). Empirically on the seed
// majority-noise workloads, distinct distributions approach within
// ~0.05 of each other while 0.03 still absorbs same-distribution
// jitter, so 0.03 keeps the representative layer from ever merging
// distributions the dense path separates.
const pxyAttachRadius = 0.03

// newSketchState sizes the buffers and picks the encoding from the
// summary population.
func newSketchState(cfg Config, summaries []Summary) *sketchState {
	st := &sketchState{attach: cfg.Sketch.AttachRadius}
	if cfg.Kind == PY {
		st.sketcher = sketch.New(sketch.Config{Dim: cfg.Sketch.Dim, Seed: cfg.Sketch.Seed})
		st.width = st.sketcher.Dim()
		st.amp = make([]float64, summaries[0].Label.Bins())
	} else {
		st.classes = len(summaries[0].Feature)
		bins := featureBins(summaries)
		// The per-class block defaults to the histogram resolution
		// itself when that is no wider than a full sketch — the blocks
		// embed exactly and the metric matches the dense path bit for
		// bit; wider feature histograms compress into Dim-wide blocks.
		dim := cfg.Sketch.Dim
		if dim <= 0 && bins <= sketch.DefaultDim {
			dim = bins
		}
		st.sketcher = sketch.New(sketch.Config{Dim: dim, Seed: cfg.Sketch.Seed})
		st.metric = pxyMetric{classes: st.classes, blockDim: st.sketcher.Dim()}
		st.width = st.classes*st.sketcher.Dim() + st.classes
		st.amp = make([]float64, bins)
		if st.attach <= 0 {
			st.attach = pxyAttachRadius
		}
	}
	st.scratch = make([]float64, st.width)
	return st
}

// featureBins returns the per-class histogram resolution shared by the
// population's P(X|y) summaries.
func featureBins(summaries []Summary) int {
	for _, s := range summaries {
		for _, h := range s.Feature {
			if h != nil {
				return h.Bins()
			}
		}
	}
	return DefaultFeatureBins
}

// encodeInto writes the summary's encoded vector into dst (width
// st.width) without allocating. Clamping and empty-histogram fallbacks
// mirror stats.Histogram.Normalize, so exactly-embedded encodings
// reproduce the dense path's distances bit for bit.
func (st *sketchState) encodeInto(dst []float64, s Summary) {
	if s.Kind == PY {
		writeAmplitude(st.amp, s.Label.Counts)
		st.sketcher.SketchInto(dst, st.amp)
		return
	}
	bd := st.sketcher.Dim()
	mass := dst[st.classes*bd:]
	for c, h := range s.Feature {
		block := dst[c*bd : (c+1)*bd]
		if h == nil {
			for i := range block {
				block[i] = 0
			}
			mass[c] = -1
			continue
		}
		mass[c] = math.Max(0, h.Total())
		writeAmplitude(st.amp, h.Counts)
		st.sketcher.SketchInto(block, st.amp)
	}
}

// writeAmplitude fills dst with √p where p is the positive-part
// normalization of counts — the same vector Histogram.Amplitude
// produces, computed into a caller-owned buffer (uniform when counts
// carry no positive mass, mirroring Normalize).
func writeAmplitude(dst, counts []float64) {
	total := 0.0
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	if total <= 0 {
		u := math.Sqrt(1 / float64(len(dst)))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	for i, c := range counts {
		if c > 0 {
			dst[i] = math.Sqrt(c / total)
		} else {
			dst[i] = 0
		}
	}
}

// observeLocked encodes client id's current summary and routes it
// through the representative index, assigning fresh singleton labels to
// newly founded representatives. Callers hold Scheduler.mu.
func (s *Scheduler) observeLocked(id int) (rep int, created bool) {
	sk := s.sk
	sk.encodeInto(sk.scratch, s.summaries[id])
	rep, created = sk.index.Observe(id, sk.scratch)
	if created {
		sk.repLabels = append(sk.repLabels, sk.nextLabel)
		sk.nextLabel++
	}
	return rep, created
}

// reclusterSketch rebuilds the representative index from scratch and
// clusters the K representatives — the sketch backend's analogue of
// recluster, with OPTICS cost K² instead of N² and no N×N allocation.
func (s *Scheduler) reclusterSketch() {
	start := time.Now()
	if s.sk == nil {
		s.sk = newSketchState(s.cfg, s.summaries)
	}
	sk := s.sk
	n := len(s.summaries)

	s.mu.Lock()
	sk.index = sketch.NewIndex(n, sk.width, sk.attach, sk.metric)
	sk.repLabels = sk.repLabels[:0]
	sk.nextLabel = 0
	// Clients feed the leader index in ascending ID order — the
	// canonical order that makes the representative set deterministic.
	for id := 0; id < n; id++ {
		sk.encodeInto(sk.scratch, s.summaries[id])
		sk.index.Observe(id, sk.scratch)
	}
	idx := sk.index
	s.mu.Unlock()

	// Cluster the representatives with the very machinery the dense
	// path applies to clients. Representative sketches are immutable
	// once founded, so reading them outside the lock is safe: only
	// reclusterSketch replaces the index, and it runs on this loop.
	//
	// Density must reflect population, not representative count: a
	// distribution group whose clients all collapse onto one
	// representative would otherwise look like a lone outlier to OPTICS
	// (it can never reach minPts neighbours), and silhouette extraction
	// would declare the fleet structureless. So each representative
	// enters the clustering as min(count, minPts) virtual copies at
	// mutual distance zero — a rep backed by enough clients is a dense
	// core by itself, exactly as its members would be on the dense
	// path, while a single-client rep can still land in noise and be
	// singletonized. The matrix stays O((minPts·K)²), independent of N.
	k := idx.Len()
	vrep := make([]int, 0, 2*k) // virtual point -> representative
	first := make([]int, k)     // representative -> its first virtual point
	for r := 0; r < k; r++ {
		copies := idx.Count(r)
		if copies > s.cfg.MinPts {
			copies = s.cfg.MinPts
		}
		if copies < 1 {
			copies = 1
		}
		first[r] = len(vrep)
		for t := 0; t < copies; t++ {
			vrep = append(vrep, r)
		}
	}
	m := cluster.FromFunc(len(vrep), func(i, j int) float64 {
		if vrep[i] == vrep[j] {
			return 0
		}
		return idx.RepDistance(vrep[i], vrep[j])
	})
	res := cluster.InstrumentedOPTICS(s.cfg.Metrics, m, s.cfg.MinPts, math.Inf(1))
	var vlabels []int
	if s.cfg.EpsPrime > 0 {
		vlabels = res.ExtractDBSCAN(s.cfg.EpsPrime)
	} else {
		vlabels = res.ExtractBestSilhouette(m, s.cfg.MinSilhouette)
	}
	cluster.ObserveClusterCount(s.cfg.Metrics, "optics", vlabels)
	// Collapse virtual copies back to representatives, then turn noise
	// representatives into singleton clusters, exactly as noise clients
	// are singletonized on the dense path.
	repLabels := make([]int, k)
	next := 0
	for _, l := range vlabels {
		if l >= next {
			next = l + 1
		}
	}
	for r := 0; r < k; r++ {
		repLabels[r] = vlabels[first[r]]
		if repLabels[r] == cluster.Noise {
			repLabels[r] = next
			next++
		}
	}
	labels := make([]int, n)
	for id := 0; id < n; id++ {
		labels[id] = repLabels[idx.Assignment(id)]
	}

	s.mu.Lock()
	sk.repLabels = append(sk.repLabels[:0], repLabels...)
	sk.nextLabel = next
	sk.reclusters++
	s.labels = labels
	s.clusters = cluster.Members(labels)
	s.baseline = s.labelCentroids(s.clusters)
	// The distance/reachability introspection describes the K
	// representatives (the set OPTICS actually saw), not the N clients.
	s.distance = introspect.SummarizeDistances(m)
	s.order = append([]int(nil), res.Order...)
	s.reach = introspect.EncodeReachability(res.Reach)
	numClusters := len(s.clusters)
	s.mu.Unlock()

	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Emit(telemetry.Reclustered(-1, numClusters, time.Since(start).Seconds()))
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Gauge("haccs_clusters", "Schedulable clusters after noise singletonization.").Set(float64(numClusters))
		s.cfg.Metrics.Gauge("haccs_sketch_representatives", "Representatives backing the sketch clustering.").Set(float64(k))
	}
}

// updateSketch is the sketch backend's §IV-C adaptation path: the
// changed clients are re-sketched and re-routed through the
// representative index incrementally — O(K·Dim) per client — and a full
// recluster runs only when some cluster's label centroid has drifted
// past the configured threshold. ids must be sorted (ascending) so the
// representative set stays independent of map iteration order.
func (s *Scheduler) updateSketch(ids []int) {
	s.mu.Lock()
	for _, id := range ids {
		rep, _ := s.observeLocked(id)
		s.labels[id] = s.sk.repLabels[rep]
	}
	s.clusters = cluster.Members(s.labels)
	// Clusters born since the last recluster (new representatives) get
	// their baseline captured at first sight, so their drift starts at
	// zero rather than being measured against nothing.
	for len(s.baseline) < len(s.clusters) {
		s.baseline = append(s.baseline, s.labelCentroid(s.clusters[len(s.baseline)]))
	}
	maxDrift := 0.0
	for i, members := range s.clusters {
		if i >= len(s.baseline) {
			continue
		}
		if len(members) == 0 {
			// A cluster that had members at baseline and has none now
			// is the extreme form of drift: its population migrated
			// wholesale (new representatives carry fresh baselines, so
			// only the abandonment is visible here).
			if len(s.baseline[i]) > 0 {
				maxDrift = 1
			}
			continue
		}
		cur := s.labelCentroid(members)
		if len(cur) == len(s.baseline[i]) {
			if d := stats.Hellinger(cur, s.baseline[i]); d > maxDrift {
				maxDrift = d
			}
		}
	}
	threshold := s.cfg.Sketch.DriftThreshold
	if threshold == 0 {
		threshold = DefaultDriftThreshold
	}
	s.mu.Unlock()

	if threshold > 0 && maxDrift > threshold {
		s.reclusterSketch()
	}
}

// sketchSelectionStateLocked fills the sketch-specific introspection
// view. Callers hold Scheduler.mu.
func (s *Scheduler) sketchSelectionStateLocked() *introspect.SketchState {
	sk := s.sk
	if sk == nil || sk.index == nil {
		return nil
	}
	st := &introspect.SketchState{
		Dim:             sk.sketcher.Dim(),
		AttachRadius:    sk.index.AttachRadius(),
		Representatives: sk.index.Len(),
		RepLabels:       append([]int(nil), sk.repLabels...),
		Reclusters:      sk.reclusters,
	}
	st.RepCounts = make([]int, sk.index.Len())
	for r := range st.RepCounts {
		st.RepCounts[r] = sk.index.Count(r)
	}
	if n := sk.index.NumClients(); n <= introspectAssignCap {
		st.Assignments = make([]int, n)
		for c := 0; c < n; c++ {
			st.Assignments[c] = sk.index.Assignment(c)
		}
	}
	return st
}

// sketchStateVersion versions the sketch component's gob payload.
const sketchStateVersion = 1

// sketchComponentState is the serialized sketch-backend state: the
// representative index (sketches verbatim), the representative→cluster
// label map, and the label/recluster counters. Together with the
// "strategy" component's labels and baselines this resumes the sketch
// pipeline bit-identically: the restored index routes future
// observations exactly as the interrupted run would have.
type sketchComponentState struct {
	Version    int
	Index      []byte
	RepLabels  []int
	NextLabel  int
	Reclusters int
}

// sketchCheckpoint adapts the scheduler's sketch state to
// checkpoint.Snapshotter under the "sketch" component name.
type sketchCheckpoint struct{ s *Scheduler }

// SnapshotState implements checkpoint.Snapshotter.
func (c sketchCheckpoint) SnapshotState() ([]byte, error) {
	s := c.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sk == nil || s.sk.index == nil {
		return nil, errors.New("core: sketch backend not initialized")
	}
	idx, err := s.sk.index.Snapshot()
	if err != nil {
		return nil, err
	}
	st := sketchComponentState{
		Version:    sketchStateVersion,
		Index:      idx,
		RepLabels:  append([]int(nil), s.sk.repLabels...),
		NextLabel:  s.sk.nextLabel,
		Reclusters: s.sk.reclusters,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("core: encode sketch state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements checkpoint.Snapshotter (restore-after-Init,
// like the scheduler's own component).
func (c sketchCheckpoint) RestoreState(data []byte) error {
	s := c.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sk == nil || s.sk.index == nil {
		return errors.New("core: sketch backend not initialized")
	}
	var st sketchComponentState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("core: decode sketch state: %w", err)
	}
	if st.Version != sketchStateVersion {
		return fmt.Errorf("core: sketch state version %d, this build reads %d", st.Version, sketchStateVersion)
	}
	if err := s.sk.index.Restore(st.Index); err != nil {
		return err
	}
	s.sk.repLabels = st.RepLabels
	s.sk.nextLabel = st.NextLabel
	s.sk.reclusters = st.Reclusters
	return nil
}

// ExtraComponents implements checkpoint.ComponentLister: on the sketch
// backend the scheduler contributes the representative index as its own
// snapshot component. Dense runs list nothing, so their snapshots stay
// byte-compatible with older builds.
func (s *Scheduler) ExtraComponents() []checkpoint.Component {
	if s.cfg.Backend != SketchBackend {
		return nil
	}
	return []checkpoint.Component{{Name: "sketch", S: sketchCheckpoint{s}}}
}

// sortedUpdateIDs returns the update map's keys in ascending order —
// the canonical observation order that keeps the sketch path
// deterministic regardless of map iteration.
func sortedUpdateIDs(updated map[int]Summary) []int {
	ids := make([]int, 0, len(updated))
	for id := range updated {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

var _ checkpoint.ComponentLister = (*Scheduler)(nil)
