package core

import (
	"encoding/json"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"haccs/internal/introspect"
	"haccs/internal/telemetry"
)

// TestSelectionStateMatchesInternals checks the snapshot reports
// exactly what the scheduler used: membership, the eq. 7 decomposition
// of the last Select, the distance summary and the OPTICS plot.
func TestSelectionStateMatchesInternals(t *testing.T) {
	s, _ := testFixture(t, PY)

	st := s.SelectionState()
	if st.Strategy != "haccs-P(y)" {
		t.Errorf("strategy %q", st.Strategy)
	}
	if st.Round != -1 {
		t.Errorf("pre-Select round %d, want -1", st.Round)
	}
	if len(st.LastPicks) != 0 {
		t.Errorf("pre-Select picks %v", st.LastPicks)
	}

	sel := s.Select(3, allAvailable(12), 4)
	st = s.SelectionState()
	if st.Round != 3 {
		t.Errorf("round %d, want 3", st.Round)
	}
	if len(st.Clusters) != s.NumClusters() {
		t.Fatalf("%d cluster states, want %d", len(st.Clusters), s.NumClusters())
	}
	for i, cs := range st.Clusters {
		if cs.ID != i || !reflect.DeepEqual(cs.Members, s.clusters[i]) {
			t.Errorf("cluster %d members %v, want %v", i, cs.Members, s.clusters[i])
		}
		p := s.lastParts[i]
		if cs.Theta != p.Theta || cs.Tau != p.Tau || cs.ACL != p.ACL || cs.ACLShare != p.ACLShare || cs.Alive != p.Alive {
			t.Errorf("cluster %d weights %+v, want %+v", i, cs, p)
		}
		if cs.Alive && cs.Theta <= 0 {
			t.Errorf("cluster %d alive with theta %v", i, cs.Theta)
		}
	}
	if len(st.LastPicks) != len(sel) {
		t.Fatalf("%d picks, want %d", len(st.LastPicks), len(sel))
	}
	for i, p := range st.LastPicks {
		if p.Client != sel[i] {
			t.Errorf("pick %d client %d, want selection order %d", i, p.Client, sel[i])
		}
		if p.Round != 3 || p.Reason != "fastest" {
			t.Errorf("pick %d rationale %+v", i, p)
		}
		if p.Latency != s.latency[p.Client] {
			t.Errorf("pick %d latency %v, want %v", i, p.Latency, s.latency[p.Client])
		}
		if s.labels[p.Client] != p.Cluster {
			t.Errorf("pick %d cluster %d, client lives in %d", i, p.Cluster, s.labels[p.Client])
		}
		if p.Theta != st.Clusters[p.Cluster].Theta {
			t.Errorf("pick %d theta %v, cluster reports %v", i, p.Theta, st.Clusters[p.Cluster].Theta)
		}
	}

	// The clustering artifacts match a recomputation over the same
	// summaries.
	m := DistanceMatrix(s.summaries)
	if st.Distance != introspect.SummarizeDistances(m) {
		t.Errorf("distance summary %+v", st.Distance)
	}
	if len(st.Order) != 12 || len(st.Reachability) != 12 {
		t.Errorf("OPTICS plot sizes %d/%d, want 12", len(st.Order), len(st.Reachability))
	}
	for i, r := range st.Reachability {
		if r != -1 && r < 0 {
			t.Errorf("reachability[%d] = %v, want -1 or >= 0", i, r)
		}
	}

	// Snapshots are copies: mutating one must not reach the scheduler.
	st.Clusters[0].Members[0] = 99
	if s.clusters[0][0] == 99 {
		t.Error("snapshot aliases scheduler state")
	}
}

// TestDebugSelectionEndpoint is the acceptance check: /debug/selection
// served over the telemetry mux returns JSON whose per-cluster θ, τ,
// ACL and member lists match the strategy's internal state.
func TestDebugSelectionEndpoint(t *testing.T) {
	s, _ := testFixture(t, PY)
	s.Select(0, allAvailable(12), 4)
	s.Update(0, []int{0}, []float64{1.5})
	s.Select(1, allAvailable(12), 4)

	srv, err := telemetry.Serve("127.0.0.1:0", nil, nil,
		telemetry.WithEndpoint("/debug/selection", introspect.Handler(s)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/selection")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var got introspect.State
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := s.SelectionState()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("served state diverges from SelectionState():\ngot  %+v\nwant %+v", got, want)
	}
	for i, cs := range got.Clusters {
		if !reflect.DeepEqual(cs.Members, s.clusters[i]) {
			t.Errorf("served cluster %d members %v, want %v", i, cs.Members, s.clusters[i])
		}
		p := s.lastParts[i]
		if cs.Theta != p.Theta || cs.Tau != p.Tau || cs.ACL != p.ACL {
			t.Errorf("served cluster %d θ/τ/ACL = %v/%v/%v, want %v/%v/%v",
				i, cs.Theta, cs.Tau, cs.ACL, p.Theta, p.Tau, p.ACL)
		}
	}
	if got.Round != 1 {
		t.Errorf("served round %d, want 1", got.Round)
	}
}

// TestClusterStateEvents checks Select writes one cluster_state record
// per cluster into the trace — the flight-recorder form of
// /debug/selection.
func TestClusterStateEvents(t *testing.T) {
	sink := &telemetry.MemorySink{}
	s, _ := testFixture(t, PY)
	s.cfg.Tracer = sink
	s.Select(2, allAvailable(12), 4)

	events := sink.Filter(telemetry.KindClusterState)
	if len(events) != s.NumClusters() {
		t.Fatalf("%d cluster_state events, want %d", len(events), s.NumClusters())
	}
	for i, e := range events {
		if e.Round != 2 || e.Cluster != i {
			t.Errorf("event %d round/cluster = %d/%d", i, e.Round, e.Cluster)
		}
		if !reflect.DeepEqual(e.Clients, s.clusters[i]) {
			t.Errorf("event %d members %v, want %v", i, e.Clients, s.clusters[i])
		}
		p := s.lastParts[i]
		if e.Theta != p.Theta || e.Tau != p.Tau || e.ACL != p.ACL || e.ACLShare != p.ACLShare {
			t.Errorf("event %d decomposition %+v, want %+v", i, e, p)
		}
	}
}

// TestSelectionStateConcurrent races the snapshot against a running
// selection loop — the /debug/selection handler does exactly this. The
// race detector (make race, CI) is the real assertion.
func TestSelectionStateConcurrent(t *testing.T) {
	s, _ := testFixture(t, PY)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					st := s.SelectionState()
					if len(st.Clusters) == 0 {
						t.Error("empty snapshot mid-run")
						return
					}
				}
			}
		}()
	}
	for round := 0; round < 50; round++ {
		sel := s.Select(round, allAvailable(12), 4)
		losses := make([]float64, len(sel))
		for i := range losses {
			losses[i] = float64(round)
		}
		s.Update(round, sel, losses)
	}
	close(done)
	wg.Wait()
}
