package core

import (
	"testing"

	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/stats"
)

// weightedFixture builds a 9-client roster in 3 groups with strongly
// increasing latencies inside each group.
func weightedFixture(t *testing.T, policy IntraClusterPolicy) *Scheduler {
	t.Helper()
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 6, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 71)
	rng := stats.NewRNG(72)
	var sums []Summary
	var infos []fl.ClientInfo
	for major := 0; major < 3; major++ {
		for k := 0; k < 3; k++ {
			ld := dataset.MajorityNoise(major, 0.75, []int{(major + 3) % 6, (major + 4) % 6, (major + 5) % 6}, dataset.DefaultMajorityFractions)
			d := gen.Generate(ld.Draw(300, rng), rng)
			sums = append(sums, Summarize(d, PY, 0))
			id := major*3 + k
			infos = append(infos, fl.ClientInfo{ID: id, Latency: float64(1 + 10*k), NumSamples: 300})
		}
	}
	s := NewScheduler(Config{Kind: PY, Rho: 0.5, IntraCluster: policy}, sums)
	s.Init(infos, stats.NewRNG(73))
	return s
}

func TestPickWeightedIncludesStragglers(t *testing.T) {
	avail := allAvailable(9)
	countSelections := func(policy IntraClusterPolicy, k int) map[int]int {
		s := weightedFixture(t, policy)
		counts := map[int]int{}
		for epoch := 0; epoch < 400; epoch++ {
			for _, id := range s.Select(epoch, avail, k) {
				counts[id]++
			}
		}
		return counts
	}
	// With k=1 a cluster is sampled at most once per round, so
	// PickFastest can only ever take each cluster's fastest member.
	fastest := countSelections(PickFastest, 1)
	weighted := countSelections(PickWeighted, 3)

	for _, slow := range []int{1, 2, 4, 5, 7, 8} {
		if fastest[slow] != 0 {
			t.Errorf("PickFastest(k=1) selected non-fastest member %d %d times", slow, fastest[slow])
		}
	}
	// PickWeighted includes every device at least occasionally.
	for id := 0; id < 9; id++ {
		if weighted[id] == 0 {
			t.Errorf("PickWeighted never selected device %d", id)
		}
	}
	// But it still prefers fast devices: the fastest member of a
	// cluster must be selected more often than the slowest.
	for g := 0; g < 3; g++ {
		fast, slow := g*3, g*3+2
		if weighted[fast] <= weighted[slow] {
			t.Errorf("cluster %d: fast device %d selected %d <= slow device %d selected %d",
				g, fast, weighted[fast], slow, weighted[slow])
		}
	}
}

func TestPickWeightedValidSelections(t *testing.T) {
	s := weightedFixture(t, PickWeighted)
	avail := allAvailable(9)
	avail[0] = false
	for epoch := 0; epoch < 100; epoch++ {
		sel := s.Select(epoch, avail, 4)
		seen := map[int]bool{}
		for _, id := range sel {
			if !avail[id] || seen[id] {
				t.Fatalf("invalid selection %v", sel)
			}
			seen[id] = true
		}
	}
}

// TestClientJoinsMidTraining exercises the §IV-C adaptation path: a
// device with a brand-new distribution joins, UpdateSummaries
// re-clusters, and the newcomer lands in its own cluster and becomes
// schedulable.
func TestClientJoinsMidTraining(t *testing.T) {
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 6, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 81)
	rng := stats.NewRNG(82)

	// Roster: 6 slots; slot 5 initially mirrors group 0 (a placeholder
	// distribution), later replaced by a genuinely new distribution.
	var sums []Summary
	var infos []fl.ClientInfo
	makeSum := func(major int) Summary {
		ld := dataset.MajorityNoise(major, 0.75, []int{(major + 3) % 6, (major + 4) % 6, (major + 5) % 6}, dataset.DefaultMajorityFractions)
		return Summarize(gen.Generate(ld.Draw(300, rng), rng), PY, 0)
	}
	for id := 0; id < 6; id++ {
		major := id / 3 // groups {0,0,0}, {1,1,1}
		if id == 5 {
			major = 1
		}
		sums = append(sums, makeSum(major))
		infos = append(infos, fl.ClientInfo{ID: id, Latency: float64(id + 1), NumSamples: 300})
	}
	s := NewScheduler(Config{Kind: PY, Rho: 0.5}, sums)
	s.Init(infos, stats.NewRNG(83))
	if s.NumClusters() != 2 {
		t.Fatalf("initial clusters = %d, want 2", s.NumClusters())
	}

	// Client 5's data distribution shifts to majority label 2 — a
	// distribution nobody else holds.
	s.UpdateSummaries(map[int]Summary{5: makeSum(2)})
	if s.NumClusters() != 3 {
		t.Fatalf("after shift clusters = %d, want 3 (labels %v)", s.NumClusters(), s.ClusterLabels())
	}
	// The shifted client must be alone in its cluster and schedulable.
	labels := s.ClusterLabels()
	for id := 0; id < 5; id++ {
		if labels[id] == labels[5] {
			t.Fatalf("client %d shares the newcomer's cluster", id)
		}
	}
	seen := false
	for epoch := 0; epoch < 50 && !seen; epoch++ {
		for _, id := range s.Select(epoch, allAvailable(6), 3) {
			if id == 5 {
				seen = true
			}
		}
	}
	if !seen {
		t.Error("re-clustered newcomer never scheduled in 50 epochs")
	}
}

func TestUpdateSummariesValidation(t *testing.T) {
	s, _ := testFixture(t, PY)
	for name, m := range map[string]map[int]Summary{
		"unknown-id": {99: {Kind: PY, Label: stats.NewLabelHistogram(8)}},
		"wrong-kind": {0: {Kind: PXY, Feature: make([]*stats.Histogram, 8)}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			s.UpdateSummaries(m)
		}()
	}
}
