package core

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// telemetryFixture is testFixture with an instrumented scheduler.
func telemetryFixture(t *testing.T) (*Scheduler, *telemetry.Registry, *telemetry.MemorySink) {
	t.Helper()
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 8, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 21)
	rng := stats.NewRNG(22)
	var sums []Summary
	var infos []fl.ClientInfo
	id := 0
	for major := 0; major < 4; major++ {
		for k := 0; k < 3; k++ {
			noise := []int{(major + 4) % 8, (major + 5) % 8, (major + 6) % 8}
			ld := dataset.MajorityNoise(major, 0.75, noise, dataset.DefaultMajorityFractions)
			d := gen.Generate(ld.Draw(300, rng), rng)
			sums = append(sums, Summarize(d, PY, 16))
			infos = append(infos, fl.ClientInfo{ID: id, Latency: float64(1 + id), NumSamples: 300})
			id++
		}
	}
	reg := telemetry.NewRegistry()
	sink := &telemetry.MemorySink{}
	sched := NewScheduler(Config{Kind: PY, Rho: 0.5, Tracer: sink, Metrics: reg}, sums)
	sched.Init(infos, stats.NewRNG(23))
	return sched, reg, sink
}

// TestSchedulerPublishesThetaGauges checks the per-cluster θ gauges:
// one per cluster, nonnegative, and consistent with eq. 7 (sum of
// ρ·τ + (1−ρ)·ACLShare over alive clusters ≈ ρ·Στ + (1−ρ)).
func TestSchedulerPublishesThetaGauges(t *testing.T) {
	s, reg, sink := telemetryFixture(t)
	sel := s.Select(0, allAvailable(12), 4)
	if len(sel) != 4 {
		t.Fatalf("selected %d", len(sel))
	}

	vec := reg.GaugeVec("haccs_cluster_theta", "", "cluster")
	for _, e := range sink.Filter(telemetry.KindClusterSampled) {
		if e.Theta <= 0 || e.Tau < 0 || e.Tau > 1 || e.ACL <= 0 {
			t.Errorf("implausible decomposition: %+v", e)
		}
		want := 0.5*e.Tau + 0.5*e.ACLShare
		if math.Abs(e.Theta-want) > 1e-12 && e.Theta != 1e-9 {
			t.Errorf("theta %v != rho*tau+(1-rho)*share %v", e.Theta, want)
		}
	}

	total := 0.0
	for i := 0; i < s.NumClusters(); i++ {
		v := vec.With(strconv.Itoa(i)).Value()
		if v < 0 {
			t.Errorf("theta gauge %d negative: %v", i, v)
		}
		total += v
	}
	if total <= 0 {
		t.Fatal("no theta mass exported")
	}

	// The gauges appear in the scrape output under one family.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `haccs_cluster_theta{cluster="0"}`) {
		t.Errorf("scrape missing theta gauge:\n%s", sb.String())
	}
}

// TestSchedulerEmitsDecisionEvents checks the per-draw event pairing
// and the Init-time recluster trail.
func TestSchedulerEmitsDecisionEvents(t *testing.T) {
	s, reg, sink := telemetryFixture(t)

	recl := sink.Filter(telemetry.KindReclustered)
	if len(recl) != 1 {
		t.Fatalf("reclustered events = %d, want 1 (from Init)", len(recl))
	}
	if recl[0].Clusters != s.NumClusters() {
		t.Errorf("reclustered clusters = %d, want %d", recl[0].Clusters, s.NumClusters())
	}
	if got := reg.Gauge("haccs_clusters", "").Value(); got != float64(s.NumClusters()) {
		t.Errorf("clusters gauge = %v, want %d", got, s.NumClusters())
	}
	if got := reg.CounterVec("haccs_clustering_runs_total", "", "algo").With("optics").Value(); got != 1 {
		t.Errorf("optics runs counter = %v, want 1", got)
	}

	sel := s.Select(3, allAvailable(12), 4)
	samples := sink.Filter(telemetry.KindClusterSampled)
	picks := sink.Filter(telemetry.KindClientPicked)
	if len(samples) != len(sel) || len(picks) != len(sel) {
		t.Fatalf("events: %d samples, %d picks, want %d each", len(samples), len(picks), len(sel))
	}
	labels := s.ClusterLabels()
	for i, p := range picks {
		if p.Round != 3 {
			t.Errorf("pick %d round = %d", i, p.Round)
		}
		if p.Client != sel[i] {
			t.Errorf("pick %d client = %d, want %d", i, p.Client, sel[i])
		}
		if p.Cluster != labels[p.Client] {
			t.Errorf("pick %d cluster = %d, want %d", i, p.Cluster, labels[p.Client])
		}
		if samples[i].Cluster != p.Cluster {
			t.Errorf("draw %d cluster %d != pick cluster %d", i, samples[i].Cluster, p.Cluster)
		}
	}
}

// TestSchedulerTelemetryDoesNotChangeDecisions runs the same roster
// with and without instrumentation and demands identical selections.
func TestSchedulerTelemetryDoesNotChangeDecisions(t *testing.T) {
	plain, _ := testFixture(t, PY)
	traced, _, _ := telemetryFixture(t)
	for round := 0; round < 5; round++ {
		a := plain.Select(round, allAvailable(12), 5)
		b := traced.Select(round, allAvailable(12), 5)
		if len(a) != len(b) {
			t.Fatalf("round %d: %v vs %v", round, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: %v vs %v", round, a, b)
			}
		}
	}
}
