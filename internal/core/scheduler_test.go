package core

import (
	"testing"

	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/stats"
)

// testFixture builds 12 clients in 4 majority-label groups of 3, with
// known latencies (client id = latency rank within the roster).
func testFixture(t *testing.T, kind SummaryKind) (*Scheduler, []fl.ClientInfo) {
	t.Helper()
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 8, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 21)
	rng := stats.NewRNG(22)
	var sums []Summary
	var infos []fl.ClientInfo
	id := 0
	for major := 0; major < 4; major++ {
		for k := 0; k < 3; k++ {
			noise := []int{(major + 4) % 8, (major + 5) % 8, (major + 6) % 8}
			ld := dataset.MajorityNoise(major, 0.75, noise, dataset.DefaultMajorityFractions)
			d := gen.Generate(ld.Draw(300, rng), rng)
			sums = append(sums, Summarize(d, kind, 16))
			infos = append(infos, fl.ClientInfo{ID: id, Latency: float64(1 + id), NumSamples: 300})
			id++
		}
	}
	sched := NewScheduler(Config{Kind: kind, Rho: 0.5}, sums)
	sched.Init(infos, stats.NewRNG(23))
	return sched, infos
}

func allAvailable(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestSchedulerName(t *testing.T) {
	s, _ := testFixture(t, PY)
	if s.Name() != "haccs-P(y)" {
		t.Errorf("name %q", s.Name())
	}
}

func TestSchedulerClustersMatchGroups(t *testing.T) {
	for _, kind := range []SummaryKind{PY, PXY} {
		s, _ := testFixture(t, kind)
		if s.NumClusters() != 4 {
			t.Errorf("%v: found %d clusters, want 4 (labels %v)", kind, s.NumClusters(), s.ClusterLabels())
			continue
		}
		labels := s.ClusterLabels()
		for major := 0; major < 4; major++ {
			base := labels[major*3]
			for k := 1; k < 3; k++ {
				if labels[major*3+k] != base {
					t.Errorf("%v: group %d split across clusters: %v", kind, major, labels)
				}
			}
		}
	}
}

func TestSchedulerSelectsMinLatencyWithinCluster(t *testing.T) {
	s, _ := testFixture(t, PY)
	// With all clients available, selecting 4 clients should return the
	// lowest-latency member of each sampled cluster. Since latencies
	// rise with client id, the first pick from group g must be client
	// g*3 (its fastest member).
	sel := s.Select(0, allAvailable(12), 4)
	if len(sel) != 4 {
		t.Fatalf("selected %d clients", len(sel))
	}
	labels := s.ClusterLabels()
	firstPick := map[int]int{} // cluster -> first selected id
	for _, id := range sel {
		c := labels[id]
		if _, seen := firstPick[c]; !seen {
			firstPick[c] = id
		}
	}
	for c, id := range firstPick {
		// The fastest member of cluster c is the minimum id in it.
		minID := 12
		for i, l := range labels {
			if l == c && i < minID {
				minID = i
			}
		}
		if id != minID {
			t.Errorf("cluster %d first pick %d, fastest member %d", c, id, minID)
		}
	}
}

func TestSchedulerNoDuplicatesAndAvailability(t *testing.T) {
	s, _ := testFixture(t, PY)
	avail := allAvailable(12)
	avail[0] = false
	avail[3] = false
	for epoch := 0; epoch < 50; epoch++ {
		sel := s.Select(epoch, avail, 6)
		seen := map[int]bool{}
		for _, id := range sel {
			if !avail[id] {
				t.Fatalf("selected unavailable client %d", id)
			}
			if seen[id] {
				t.Fatalf("duplicate selection %d", id)
			}
			seen[id] = true
		}
	}
}

func TestSchedulerSelectAllWhenBudgetExceedsClients(t *testing.T) {
	s, _ := testFixture(t, PY)
	sel := s.Select(0, allAvailable(12), 50)
	if len(sel) != 12 {
		t.Errorf("selected %d of 12 clients with huge budget", len(sel))
	}
}

func TestSchedulerNothingAvailable(t *testing.T) {
	s, _ := testFixture(t, PY)
	sel := s.Select(0, make([]bool, 12), 5)
	if len(sel) != 0 {
		t.Errorf("selected %v with nothing available", sel)
	}
}

func TestSchedulerDropoutFallsBackToClusterPeer(t *testing.T) {
	// The HACCS robustness claim: when a cluster's fastest device drops,
	// the next-fastest member of the same cluster takes its place.
	s, _ := testFixture(t, PY)
	labels := s.ClusterLabels()
	avail := allAvailable(12)
	avail[0] = false // drop the fastest member of client 0's cluster
	counts := map[int]int{}
	for epoch := 0; epoch < 200; epoch++ {
		for _, id := range s.Select(epoch, avail, 4) {
			counts[id]++
		}
	}
	// Client 1 shares client 0's cluster and is its next-fastest member;
	// it must be picked whenever that cluster is sampled first.
	peer := -1
	for i := 1; i < 12; i++ {
		if labels[i] == labels[0] {
			peer = i
			break
		}
	}
	if counts[peer] == 0 {
		t.Errorf("cluster peer %d never substituted for dropped client 0 (counts %v)", peer, counts)
	}
	if counts[0] != 0 {
		t.Error("dropped client was selected")
	}
}

func TestSchedulerRhoExtremes(t *testing.T) {
	// rho=1: pure latency preference. The globally fastest cluster
	// should dominate selection frequency.
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 8, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 31)
	rng := stats.NewRNG(32)
	var sums []Summary
	var infos []fl.ClientInfo
	for major := 0; major < 4; major++ {
		for k := 0; k < 3; k++ {
			ld := dataset.MajorityNoise(major, 0.75, []int{(major + 4) % 8, (major + 5) % 8, (major + 6) % 8}, dataset.DefaultMajorityFractions)
			d := gen.Generate(ld.Draw(300, rng), rng)
			sums = append(sums, Summarize(d, PY, 0))
			id := major*3 + k
			// Cluster 0's members are far faster than everyone else.
			lat := 100.0
			if major == 0 {
				lat = 1.0
			}
			infos = append(infos, fl.ClientInfo{ID: id, Latency: lat, NumSamples: 300})
		}
	}
	fast := NewScheduler(Config{Kind: PY, Rho: 1}, sums)
	fast.Init(infos, stats.NewRNG(33))
	labels := fast.ClusterLabels()
	fastCluster := labels[0]
	fastPicks, totalPicks := 0, 0
	for epoch := 0; epoch < 100; epoch++ {
		for _, id := range fast.Select(epoch, allAvailable(12), 2) {
			if labels[id] == fastCluster {
				fastPicks++
			}
			totalPicks++
		}
	}
	if float64(fastPicks)/float64(totalPicks) < 0.5 {
		t.Errorf("rho=1 picked the fast cluster only %d/%d times", fastPicks, totalPicks)
	}

	// rho=0: pure loss preference. Crank one cluster's loss and verify
	// it dominates.
	lossy := NewScheduler(Config{Kind: PY, Rho: 0}, sums)
	lossy.Init(infos, stats.NewRNG(34))
	labels = lossy.ClusterLabels()
	// Report huge loss for cluster of client 9, tiny for everyone else.
	hotCluster := labels[9]
	var sel, losses []int
	_ = losses
	sel = []int{}
	for id := 0; id < 12; id++ {
		sel = append(sel, id)
	}
	ls := make([]float64, 12)
	for id := 0; id < 12; id++ {
		if labels[id] == hotCluster {
			ls[id] = 50
		} else {
			ls[id] = 0.01
		}
	}
	lossy.Update(0, sel, ls)
	hotPicks, total := 0, 0
	for epoch := 1; epoch < 101; epoch++ {
		for _, id := range lossy.Select(epoch, allAvailable(12), 2) {
			if labels[id] == hotCluster {
				hotPicks++
			}
			total++
		}
	}
	if float64(hotPicks)/float64(total) < 0.5 {
		t.Errorf("rho=0 picked the high-loss cluster only %d/%d times", hotPicks, total)
	}
}

func TestSchedulerUpdateSummariesReclusters(t *testing.T) {
	s, _ := testFixture(t, PY)
	before := s.NumClusters()
	// Move clients 0..2 (group 0) to look exactly like group 1's
	// distribution: clusters should merge.
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 8, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 21)
	rng := stats.NewRNG(55)
	updated := map[int]Summary{}
	for id := 0; id < 3; id++ {
		ld := dataset.MajorityNoise(1, 0.75, []int{5, 6, 7}, dataset.DefaultMajorityFractions)
		updated[id] = Summarize(gen.Generate(ld.Draw(300, rng), rng), PY, 0)
	}
	s.UpdateSummaries(updated)
	after := s.NumClusters()
	if after >= before {
		t.Errorf("re-clustering did not merge groups: %d -> %d", before, after)
	}
}

func TestSchedulerIIDCollapsesToOneCluster(t *testing.T) {
	// The paper's IID sensitivity case: uniform labels on every client
	// should produce a single cluster for P(y), letting HACCS simply
	// pick the fastest clients.
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 10, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 41)
	rng := stats.NewRNG(42)
	var sums []Summary
	var infos []fl.ClientInfo
	for id := 0; id < 10; id++ {
		d := gen.Generate(dataset.Uniform(10).Draw(500, rng), rng)
		sums = append(sums, Summarize(d, PY, 0))
		infos = append(infos, fl.ClientInfo{ID: id, Latency: float64(id + 1), NumSamples: 500})
	}
	s := NewScheduler(Config{Kind: PY, Rho: 0.5}, sums)
	s.Init(infos, stats.NewRNG(43))
	if s.NumClusters() != 1 {
		t.Fatalf("IID data produced %d clusters", s.NumClusters())
	}
	// Selection should now be the k globally fastest clients.
	sel := s.Select(0, allAvailable(10), 3)
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, id := range sel {
		if !want[id] {
			t.Errorf("IID selection picked %d, want the 3 fastest", id)
		}
	}
}

func TestSchedulerBadRhoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScheduler(Config{Kind: PY, Rho: 1.5}, []Summary{{Kind: PY, Label: stats.NewLabelHistogram(2)}})
}

func TestSchedulerKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScheduler(Config{Kind: PXY}, []Summary{{Kind: PY, Label: stats.NewLabelHistogram(2)}})
}

func TestSchedulerNoisySummariesStillCluster(t *testing.T) {
	// With a moderate privacy budget (eps = 0.1) and ample data,
	// clustering accuracy should survive (paper Fig. 8a).
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 8, Width: 8, Classes: 8, NoiseStd: 0.1, Blobs: 3}
	gen := dataset.NewGenerator(spec, 61)
	rng := stats.NewRNG(62)
	noiseRNG := stats.NewRNG(63)
	var sums []Summary
	var infos []fl.ClientInfo
	truth := []int{}
	for major := 0; major < 4; major++ {
		for k := 0; k < 2; k++ {
			ld := dataset.MajorityNoise(major, 0.70, []int{(major + 4) % 8, (major + 5) % 8, (major + 6) % 8}, []float64{0.10, 0.10, 0.10})
			d := gen.Generate(ld.Draw(1000, rng), rng)
			sums = append(sums, Summarize(d, PY, 0).Noised(0.1, noiseRNG))
			infos = append(infos, fl.ClientInfo{ID: len(infos), Latency: 1, NumSamples: 1000})
			truth = append(truth, major)
		}
	}
	s := NewScheduler(Config{Kind: PY, Rho: 0.5}, sums)
	s.Init(infos, stats.NewRNG(64))
	if s.NumClusters() != 4 {
		t.Errorf("eps=0.1 with 1000 samples: %d clusters, want 4 (labels %v)", s.NumClusters(), s.ClusterLabels())
	}
}
