package core

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"haccs/internal/cluster"
	"haccs/internal/fl"
	"haccs/internal/fleet"
	"haccs/internal/introspect"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// IntraClusterPolicy selects how a device is chosen inside a sampled
// cluster.
type IntraClusterPolicy int

const (
	// PickFastest always takes the minimum-latency available device —
	// Algorithm 1 as published.
	PickFastest IntraClusterPolicy = iota
	// PickWeighted samples devices with probability proportional to
	// 1/latency — the straggler-bias mitigation the paper sketches in
	// §V-D5 ("perform sampling within a cluster, rather than simply
	// using the current ordering based on latency"). Slower devices are
	// still disfavoured but are included regularly.
	PickWeighted
)

// Config parameterizes the HACCS scheduler.
type Config struct {
	// Kind selects the summary family used for clustering (names the
	// strategy: "haccs-P(y)" or "haccs-P(X|y)").
	Kind SummaryKind
	// Rho trades latency against loss in the cluster sampling weights
	// (eq. 7): high rho favours fast clusters, low rho favours
	// high-loss clusters. The value must lie in [0, 1].
	Rho float64
	// MinPts is the OPTICS density parameter (default 2).
	MinPts int
	// EpsPrime is the reachability-plot extraction threshold; 0 selects
	// automatic silhouette-scored extraction.
	EpsPrime float64
	// InitLoss seeds unknown client losses before first training.
	InitLoss float64
	// IntraCluster picks the device-within-cluster policy (default
	// PickFastest, the published algorithm).
	IntraCluster IntraClusterPolicy
	// Tracer receives the scheduler's decision events (cluster sampled
	// with its θ/τ/ACL decomposition, device picked, re-clustering);
	// nil disables tracing.
	Tracer telemetry.Tracer
	// Metrics, when non-nil, receives the scheduler's gauges: one θ
	// gauge per cluster, the cluster count, and the clustering-cost
	// series recorded through internal/cluster's instrumented wrappers.
	Metrics *telemetry.Registry
	// Backend selects the clustering pipeline: DenseBackend (the
	// default) computes the full N×N pairwise Hellinger matrix;
	// SketchBackend compresses summaries into fixed-size sketches and
	// clusters K ≪ N representatives, scaling to 100k+ clients.
	Backend ClusterBackend
	// Sketch parameterizes the sketch backend; ignored for
	// DenseBackend. The zero value selects sensible defaults.
	Sketch SketchOptions
	// MinSilhouette is the structure threshold for automatic extraction
	// (0 picks a kind-dependent default). P(y) distances are well spread
	// and use cluster.DefaultMinSilhouette; P(X|y) distances live on a
	// compressed scale — per-class Hellinger terms are averaged — so a
	// lower threshold is needed, which also reproduces the paper's
	// observation that P(X|y) "identified a few clusters even though the
	// data was IID" (§V-D1).
	MinSilhouette float64
}

func (c *Config) fillDefaults() {
	if c.Rho < 0 || c.Rho > 1 {
		panic(fmt.Sprintf("core: rho %v outside [0,1]", c.Rho))
	}
	if c.MinPts <= 0 {
		c.MinPts = 2
	}
	if c.InitLoss <= 0 {
		c.InitLoss = 2.3
	}
	if c.MinSilhouette <= 0 {
		if c.Kind == PXY {
			c.MinSilhouette = pxyMinSilhouette
		} else {
			c.MinSilhouette = cluster.DefaultMinSilhouette
		}
	}
}

// pxyMinSilhouette is the default structure threshold for P(X|y)
// summaries (see Config.MinSilhouette).
const pxyMinSilhouette = 0.12

// Scheduler is the HACCS client-selection strategy (Algorithm 1). It
// clusters clients by summary distance once at initialization, then each
// epoch samples clusters by weighted simple random sampling with
// replacement (Weighted-SRSWR) using the eq. 7 weights and picks the
// lowest-latency available device within each sampled cluster.
type Scheduler struct {
	cfg       Config
	summaries []Summary

	rng      *stats.RNG
	latency  []float64
	lastLoss []float64

	labels   []int   // client -> cluster id (singletonized noise)
	clusters [][]int // cluster id -> member client IDs

	// sk holds the sketch backend's working state (nil on the dense
	// backend and before the first reclusterSketch).
	sk *sketchState

	// baseline holds each cluster's label-distribution centroid captured
	// at cluster time — the reference point for the fleet drift gauge.
	// Re-clustering (Init or UpdateSummaries) resets it, so drift always
	// means "change since the clustering currently in force".
	baseline [][]float64

	// Introspection snapshot: the scheduler's own loop (Init, Select,
	// Update, UpdateSummaries) runs single-threaded on the round driver,
	// but SelectionState is served from the telemetry HTTP goroutine
	// mid-run, so everything it reads is written and read under mu.
	mu        sync.Mutex
	lastRound int
	lastParts []clusterWeight
	lastPicks []introspect.Pick
	distance  introspect.DistanceSummary
	order     []int
	reach     []float64
}

// NewScheduler builds a HACCS scheduler from the clients' (possibly
// DP-noised) summaries. Clustering happens when the engine calls Init,
// once latencies are known.
func NewScheduler(cfg Config, summaries []Summary) *Scheduler {
	cfg.fillDefaults()
	if len(summaries) == 0 {
		panic("core: NewScheduler with no summaries")
	}
	for _, s := range summaries {
		if s.Kind != cfg.Kind {
			panic("core: summary kind mismatch with config")
		}
	}
	return &Scheduler{cfg: cfg, summaries: summaries, lastRound: -1}
}

// Name implements fl.Strategy.
func (s *Scheduler) Name() string { return "haccs-" + s.cfg.Kind.String() }

// Init implements fl.Strategy: it computes the distance matrix, runs
// OPTICS, and extracts the clusters.
func (s *Scheduler) Init(clients []fl.ClientInfo, rng *stats.RNG) {
	if len(clients) != len(s.summaries) {
		panic("core: client count does not match summaries")
	}
	s.rng = rng
	s.latency = make([]float64, len(clients))
	s.lastLoss = make([]float64, len(clients))
	for _, c := range clients {
		s.latency[c.ID] = c.Latency
		s.lastLoss[c.ID] = s.cfg.InitLoss
	}
	s.recluster()
}

// recluster recomputes the cluster assignment from current summaries
// through whichever backend is configured.
func (s *Scheduler) recluster() {
	if s.cfg.Backend == SketchBackend {
		s.reclusterSketch()
		return
	}
	start := time.Now()
	m := DistanceMatrix(s.summaries)
	res := cluster.InstrumentedOPTICS(s.cfg.Metrics, m, s.cfg.MinPts, math.Inf(1))
	var labels []int
	if s.cfg.EpsPrime > 0 {
		labels = res.ExtractDBSCAN(s.cfg.EpsPrime)
	} else {
		labels = res.ExtractBestSilhouette(m, s.cfg.MinSilhouette)
	}
	cluster.ObserveClusterCount(s.cfg.Metrics, "optics", labels)
	// Noise points become singleton clusters: the paper values OPTICS
	// precisely because it can refuse to force dissimilar clients into a
	// cluster, but every device must remain schedulable, and a singleton
	// preserves "each distinguishable distribution is represented".
	next := 0
	for _, l := range labels {
		if l >= next {
			next = l + 1
		}
	}
	for i, l := range labels {
		if l == cluster.Noise {
			labels[i] = next
			next++
		}
	}
	s.mu.Lock()
	s.labels = labels
	s.clusters = cluster.Members(labels)
	s.baseline = s.labelCentroids(s.clusters)
	s.distance = introspect.SummarizeDistances(m)
	s.order = append([]int(nil), res.Order...)
	s.reach = introspect.EncodeReachability(res.Reach)
	s.mu.Unlock()
	if s.cfg.Tracer != nil {
		// Round -1: clustering happens at Init and on summary updates,
		// outside any specific round.
		s.cfg.Tracer.Emit(telemetry.Reclustered(-1, len(s.clusters), time.Since(start).Seconds()))
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Gauge("haccs_clusters", "Schedulable clusters after noise singletonization.").Set(float64(len(s.clusters)))
	}
}

// UpdateSummaries replaces one or more clients' summaries (clients
// joining, leaving, or reporting distribution shift) — the paper's
// real-time adaptation hook (§IV-C). The map keys are client IDs. The
// dense backend re-clusters from scratch; the sketch backend reassigns
// only the changed clients against the standing representatives and
// re-clusters only when label-centroid drift crosses the configured
// threshold.
func (s *Scheduler) UpdateSummaries(updated map[int]Summary) {
	for id, sum := range updated {
		if id < 0 || id >= len(s.summaries) {
			panic(fmt.Sprintf("core: UpdateSummaries for unknown client %d", id))
		}
		if sum.Kind != s.cfg.Kind {
			panic("core: UpdateSummaries kind mismatch")
		}
		s.summaries[id] = sum
	}
	if s.latency == nil {
		return
	}
	if s.cfg.Backend == SketchBackend && s.sk != nil && s.sk.index != nil {
		s.updateSketch(sortedUpdateIDs(updated))
		return
	}
	s.recluster()
}

// ClusterLabels returns each client's cluster id.
func (s *Scheduler) ClusterLabels() []int { return append([]int(nil), s.labels...) }

// Clusters returns the member lists of every cluster.
func (s *Scheduler) Clusters() [][]int {
	out := make([][]int, len(s.clusters))
	for i, c := range s.clusters {
		out[i] = append([]int(nil), c...)
	}
	return out
}

// NumClusters returns the number of clusters identified.
func (s *Scheduler) NumClusters() int { return len(s.clusters) }

// clusterWeight is the eq. 7 weight of one cluster with its
// decomposition, kept so the trace can explain every sampling draw.
type clusterWeight struct {
	Theta    float64 // ρ·τ + (1−ρ)·ACLShare, floored at 1e-9 when schedulable
	Tau      float64 // 1 − Latency_i / Latency_max
	ACL      float64 // average loss of the cluster's available members
	ACLShare float64 // ACL_i / Σ_j ACL_j
	Alive    bool    // cluster has at least one available member
}

// clusterWeights computes the eq. 7 sampling weight for every cluster
// over its currently available members:
//
//	θ_i = ρ·τ_i + (1−ρ)·ACL_i / Σ_j ACL_j
//	τ_i = 1 − Latency_i / Latency_max
//
// where Latency_i and ACL_i are the average latency and loss of the
// cluster's available members. Clusters with no available members get
// weight 0.
func (s *Scheduler) clusterWeights(available []bool) ([]float64, []clusterWeight) {
	n := len(s.clusters)
	avgLat := make([]float64, n)
	avgLoss := make([]float64, n)
	hasMembers := make([]bool, n)
	maxLat := 0.0
	totalLoss := 0.0
	for i, members := range s.clusters {
		sumLat, sumLoss, cnt := 0.0, 0.0, 0
		for _, id := range members {
			if available[id] {
				sumLat += s.latency[id]
				sumLoss += s.lastLoss[id]
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		hasMembers[i] = true
		avgLat[i] = sumLat / float64(cnt)
		avgLoss[i] = sumLoss / float64(cnt)
		if avgLat[i] > maxLat {
			maxLat = avgLat[i]
		}
		totalLoss += avgLoss[i]
	}
	weights := make([]float64, n)
	parts := make([]clusterWeight, n)
	for i := range s.clusters {
		if !hasMembers[i] {
			continue
		}
		tau := 0.0
		if maxLat > 0 {
			tau = 1 - avgLat[i]/maxLat
		}
		lossTerm := 0.0
		if totalLoss > 0 {
			lossTerm = avgLoss[i] / totalLoss
		}
		w := s.cfg.Rho*tau + (1-s.cfg.Rho)*lossTerm
		// A strictly zero weight would make the slowest cluster
		// unreachable at rho=1; keep a small floor so SRSWR can still
		// sample it (the paper's law-of-large-numbers argument in §V-D3
		// assumes weights are "not extremely small" but nonzero).
		if w <= 0 {
			w = 1e-9
		}
		weights[i] = w
		parts[i] = clusterWeight{Theta: w, Tau: tau, ACL: avgLoss[i], ACLShare: lossTerm, Alive: true}
	}
	return weights, parts
}

// publishWeights exports every cluster's θ (and the cluster count) as
// labelled gauges — the per-cluster view the /metrics acceptance check
// scrapes. Clusters without available members export θ = 0.
func (s *Scheduler) publishWeights(parts []clusterWeight) {
	if s.cfg.Metrics == nil {
		return
	}
	thetas := s.cfg.Metrics.GaugeVec("haccs_cluster_theta", "Eq. 7 sampling weight of each cluster over its available members.", "cluster")
	for i, p := range parts {
		theta := 0.0
		if p.Alive {
			theta = p.Theta
		}
		thetas.With(strconv.Itoa(i)).Set(theta)
	}
}

// Select implements fl.Strategy (Algorithm 1): Weighted-SRSWR over
// clusters, then the minimum-latency available device within each
// sampled cluster, removing picked devices for the remainder of the
// round.
func (s *Scheduler) Select(epoch int, available []bool, k int) []int {
	weights, parts := s.clusterWeights(available)
	s.publishWeights(parts)
	reason := "fastest"
	if s.cfg.IntraCluster == PickWeighted {
		reason = "weighted"
	}
	if s.cfg.Tracer != nil {
		// One cluster_state record per cluster per Select: the
		// flight-recorder form of /debug/selection, so a finished run's
		// JSONL can replay why every round's draw looked the way it did.
		for i, p := range parts {
			s.cfg.Tracer.Emit(telemetry.ClusterState(epoch, i, p.Theta, p.Tau, p.ACL, p.ACLShare,
				append([]int(nil), s.clusters[i]...)))
		}
	}
	picked := make(map[int]bool, k)
	var selected []int
	picks := make([]introspect.Pick, 0, k)
	// remaining[i] counts available, unpicked members of cluster i.
	remaining := make([]int, len(s.clusters))
	anyRemaining := false
	for i, members := range s.clusters {
		for _, id := range members {
			if available[id] {
				remaining[i]++
			}
		}
		if remaining[i] > 0 && weights[i] > 0 {
			anyRemaining = true
		}
	}
	for len(selected) < k && anyRemaining {
		c := s.rng.WeightedChoice(weights)
		if remaining[c] == 0 {
			// Sampled an exhausted cluster (SRSWR samples with
			// replacement); drop it from the distribution and retry.
			weights[c] = 0
			anyRemaining = false
			for i := range weights {
				if weights[i] > 0 && remaining[i] > 0 {
					anyRemaining = true
					break
				}
			}
			continue
		}
		best := s.pickWithin(c, available, picked)
		picked[best] = true
		selected = append(selected, best)
		remaining[c]--
		picks = append(picks, introspect.Pick{
			Round:   epoch,
			Cluster: c,
			Client:  best,
			Latency: s.latency[best],
			Theta:   parts[c].Theta,
			Reason:  reason,
		})
		if s.cfg.Tracer != nil {
			p := parts[c]
			s.cfg.Tracer.Emit(telemetry.ClusterSampled(epoch, c, p.Theta, p.Tau, p.ACL, p.ACLShare))
			s.cfg.Tracer.Emit(telemetry.ClientPicked(epoch, c, best, s.latency[best], reason))
		}
	}
	s.mu.Lock()
	s.lastRound = epoch
	s.lastParts = parts
	s.lastPicks = picks
	s.mu.Unlock()
	return selected
}

// SelectionState implements introspect.SelectionInspector: a consistent
// snapshot of the live decision state — cluster membership with the
// most recent eq. 7 weight decomposition, the distance-matrix summary
// and OPTICS reachability behind the current clustering, and the last
// round's pick rationale. Safe to call concurrently with a running
// round (the /debug/selection handler does).
func (s *Scheduler) SelectionState() introspect.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := introspect.State{
		Strategy:     s.Name(),
		Backend:      s.cfg.Backend.String(),
		Sketch:       s.sketchSelectionStateLocked(),
		Round:        s.lastRound,
		Distance:     s.distance,
		Order:        append([]int(nil), s.order...),
		Reachability: append([]float64(nil), s.reach...),
		LastPicks:    append([]introspect.Pick(nil), s.lastPicks...),
		Clusters:     make([]introspect.ClusterState, len(s.clusters)),
	}
	for i, members := range s.clusters {
		cs := introspect.ClusterState{ID: i, Members: append([]int(nil), members...)}
		if i < len(s.lastParts) {
			p := s.lastParts[i]
			cs.Theta, cs.Tau, cs.ACL, cs.ACLShare, cs.Alive = p.Theta, p.Tau, p.ACL, p.ACLShare, p.Alive
		}
		st.Clusters[i] = cs
	}
	return st
}

// pickWithin chooses one available, unpicked device from cluster c
// according to the configured intra-cluster policy. The caller
// guarantees at least one candidate exists.
func (s *Scheduler) pickWithin(c int, available []bool, picked map[int]bool) int {
	if s.cfg.IntraCluster == PickWeighted {
		var ids []int
		var weights []float64
		for _, id := range s.clusters[c] {
			if available[id] && !picked[id] {
				ids = append(ids, id)
				weights = append(weights, 1/math.Max(s.latency[id], 1e-9))
			}
		}
		return ids[s.rng.WeightedChoice(weights)]
	}
	best := -1
	for _, id := range s.clusters[c] {
		if !available[id] || picked[id] {
			continue
		}
		if best == -1 || s.latency[id] < s.latency[best] {
			best = id
		}
	}
	return best
}

// Update implements fl.Strategy.
func (s *Scheduler) Update(epoch int, selected []int, losses []float64) {
	for i, id := range selected {
		s.lastLoss[id] = losses[i]
	}
}

// labelCentroids computes each cluster's label-distribution centroid
// from the current summaries: for P(y) the normalized sum of the
// members' label histograms, for P(X|y) the normalized per-class mass
// vector (how much of the cluster's data sits under each class).
// Noised summaries can carry negative mass; it clamps at zero, and an
// entirely massless cluster yields the uniform distribution so the
// drift distance stays well defined.
func (s *Scheduler) labelCentroids(clusters [][]int) [][]float64 {
	out := make([][]float64, len(clusters))
	for i, members := range clusters {
		out[i] = s.labelCentroid(members)
	}
	return out
}

func (s *Scheduler) labelCentroid(members []int) []float64 {
	var acc []float64
	for _, id := range members {
		sum := s.summaries[id]
		switch sum.Kind {
		case PY:
			if acc == nil {
				acc = make([]float64, len(sum.Label.Counts))
			}
			for b, c := range sum.Label.Counts {
				acc[b] += math.Max(0, c)
			}
		case PXY:
			if acc == nil {
				acc = make([]float64, len(sum.Feature))
			}
			for cls, h := range sum.Feature {
				if h != nil {
					acc[cls] += math.Max(0, h.Total())
				}
			}
		}
	}
	total := 0.0
	for _, v := range acc {
		total += v
	}
	if total <= 0 {
		u := 1.0 / float64(len(acc))
		for i := range acc {
			acc[i] = u
		}
		return acc
	}
	for i := range acc {
		acc[i] /= total
	}
	return acc
}

// FleetClusterState implements fleet.ClusterSource: the cluster
// membership in force, each cluster's normalized share of the eq. 7
// sampling weight (the scheduler's intent, against which the fleet
// registry reports realized selection share), and each cluster's
// Hellinger drift — current label-distribution centroid vs. the
// centroid captured when the clustering was computed. Before the first
// Select the θ targets fall back to uniform. Called on the round-driver
// goroutine by the fleet registry; summary reads are safe because
// UpdateSummaries runs on the same loop.
func (s *Scheduler) FleetClusterState() fleet.ClusterTargets {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.clusters)
	t := fleet.ClusterTargets{
		Members: make([][]int, n),
		Theta:   make([]float64, n),
		Drift:   make([]float64, n),
	}
	totalTheta := 0.0
	for i, members := range s.clusters {
		t.Members[i] = append([]int(nil), members...)
		if i < len(s.lastParts) && s.lastParts[i].Alive {
			t.Theta[i] = s.lastParts[i].Theta
		}
		totalTheta += t.Theta[i]
	}
	if totalTheta > 0 {
		for i := range t.Theta {
			t.Theta[i] /= totalTheta
		}
	} else if n > 0 {
		for i := range t.Theta {
			t.Theta[i] = 1 / float64(n)
		}
	}
	for i, members := range s.clusters {
		cur := s.labelCentroid(members)
		if i < len(s.baseline) && len(s.baseline[i]) == len(cur) {
			t.Drift[i] = stats.Hellinger(cur, s.baseline[i])
		}
	}
	return t
}

var _ fl.Strategy = (*Scheduler)(nil)
var _ introspect.SelectionInspector = (*Scheduler)(nil)
var _ fleet.ClusterSource = (*Scheduler)(nil)
