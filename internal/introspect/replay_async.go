package introspect

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"haccs/internal/telemetry"
)

// HasAsyncEvents reports whether the stream came from an async-mode
// run (any buffered-aggregation event present), so haccs-trace can
// decide whether an async summary section is worth printing.
func HasAsyncEvents(events []telemetry.Event) bool {
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindUpdateBuffered, telemetry.KindUpdateStale, telemetry.KindAggregateAsync:
			return true
		}
	}
	return false
}

// WriteAsyncSummary reconstructs the buffered-aggregation view of an
// async run from its event stream: the staleness distribution of every
// buffered update and the buffer fill/flush timeline. The scan keys on
// event kinds only, so update_buffered events interleaved with worker
// client_trained events (or any other traffic) replay fine.
func WriteAsyncSummary(w io.Writer, events []telemetry.Event) error {
	staleness := map[int]int{}
	buffered, dropped := 0, 0
	type flush struct {
		round   int
		fill    int
		maxTau  int
		virtual float64
		clock   float64
	}
	var flushes []flush
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindUpdateBuffered:
			staleness[e.Staleness]++
			buffered++
		case telemetry.KindUpdateStale:
			dropped++
		case telemetry.KindAggregateAsync:
			flushes = append(flushes, flush{e.Round, len(e.Clients), e.Staleness, e.VirtualSec, e.Clock})
		}
	}
	if buffered == 0 && dropped == 0 && len(flushes) == 0 {
		_, err := fmt.Fprintln(w, "no async events recorded")
		return err
	}

	if _, err := fmt.Fprintf(w, "== async summary ==\n"); err != nil {
		return err
	}
	if buffered > 0 {
		taus := make([]int, 0, len(staleness))
		for tau := range staleness {
			taus = append(taus, tau)
		}
		sort.Ints(taus)
		maxCount := 0
		for _, n := range staleness {
			if n > maxCount {
				maxCount = n
			}
		}
		fmt.Fprintf(w, "\nstaleness distribution (%d buffered updates):\n", buffered)
		for _, tau := range taus {
			n := staleness[tau]
			bar := strings.Repeat("#", 1+n*29/maxCount)
			fmt.Fprintf(w, "  τ=%-3d %6d  %s\n", tau, n, bar)
		}
	}
	if dropped > 0 {
		fmt.Fprintf(w, "\nstale-dropped: %d update(s) past the staleness bound\n", dropped)
	}
	if len(flushes) > 0 {
		fmt.Fprintf(w, "\nbuffer flush timeline (%d flushes):\n", len(flushes))
		show := flushes
		const maxRows = 16
		if len(show) > maxRows {
			thin := make([]flush, 0, maxRows)
			for i := 0; i < maxRows; i++ {
				thin = append(thin, show[i*(len(show)-1)/(maxRows-1)])
			}
			show = thin
		}
		for _, f := range show {
			fmt.Fprintf(w, "  round %5d  fill %2d  max τ %2d  cycle %7.1fs  clock %9.1fs\n",
				f.round, f.fill, f.maxTau, f.virtual, f.clock)
		}
	}
	return nil
}
