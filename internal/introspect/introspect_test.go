package introspect

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"haccs/internal/telemetry"
)

// sliceMatrix adapts a dense symmetric matrix to DistanceMatrix.
type sliceMatrix [][]float64

func (m sliceMatrix) Len() int            { return len(m) }
func (m sliceMatrix) At(i, j int) float64 { return m[i][j] }

func TestSummarizeDistances(t *testing.T) {
	m := sliceMatrix{
		{0, 0.2, 0.8},
		{0.2, 0, 0.5},
		{0.8, 0.5, 0},
	}
	s := SummarizeDistances(m)
	want := DistanceSummary{N: 3, Min: 0.2, Mean: 0.5, Max: 0.8}
	if s != want {
		t.Errorf("summary = %+v, want %+v", s, want)
	}

	// Degenerate sizes keep the zero stats with N set.
	for _, m := range []sliceMatrix{{}, {{0}}} {
		s := SummarizeDistances(m)
		if s != (DistanceSummary{N: len(m)}) {
			t.Errorf("n=%d summary = %+v", len(m), s)
		}
	}
}

func TestEncodeReachability(t *testing.T) {
	in := []float64{math.Inf(1), 0.3, math.NaN(), 0, 1.5}
	got := EncodeReachability(in)
	want := []float64{-1, 0.3, -1, 0, 1.5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("encoded = %v, want %v", got, want)
	}
	if !math.IsInf(in[0], 1) {
		t.Error("input mutated")
	}
	if EncodeReachability(nil) != nil {
		t.Error("nil input should stay nil")
	}
	// The encoded form must survive JSON.
	if _, err := json.Marshal(got); err != nil {
		t.Errorf("encoded reachability not JSON-safe: %v", err)
	}
}

// stateFunc adapts a fixed State to SelectionInspector.
type stateFunc State

func (s stateFunc) SelectionState() State { return State(s) }

func TestHandler(t *testing.T) {
	st := State{
		Strategy: "haccs-P(y)",
		Round:    5,
		Clusters: []ClusterState{{ID: 0, Members: []int{0, 1}, Theta: 0.6, Alive: true}},
		Distance: DistanceSummary{N: 2, Min: 0.1, Mean: 0.1, Max: 0.1},
	}
	rec := httptest.NewRecorder()
	Handler(stateFunc(st)).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/selection", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var got State
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Errorf("round-tripped state = %+v, want %+v", got, st)
	}

	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/selection", nil))
	if rec.Code != 404 {
		t.Errorf("nil inspector status %d, want 404", rec.Code)
	}
}

// replayEvents is a small synthetic run: one round with selection,
// spans, aggregation, and the introspection records.
func replayEvents() []telemetry.Event {
	return []telemetry.Event{
		telemetry.Reclustered(-1, 2, 0.002),
		telemetry.ClusterState(0, 0, 0.7, 0.9, 1.2, 0.55, []int{0, 1}),
		telemetry.ClusterState(0, 1, 0.3, 0.1, 1.0, 0.45, []int{2}),
		telemetry.ClusterSampled(0, 0, 0.7, 0.9, 1.2, 0.55),
		telemetry.ClientPicked(0, 0, 1, 2.5, "fastest"),
		telemetry.ClusterSampled(0, 1, 0.3, 0.1, 1.0, 0.45),
		telemetry.ClientPicked(0, 1, 2, 4.0, "fastest"),
		telemetry.Selection(0, []int{1, 2}),
		telemetry.SpanEnded("round", 0xa, 0xb, 0, 0, -1, 0, 0.01),
		telemetry.SpanEnded("dispatch", 0xa, 0xc, 0xb, 0, -1, 0.001, 0.008),
		telemetry.Aggregated(0, []int{1, 2}, 4.0, 4.0),
		telemetry.ShardReport(0, 1, []int{1, 2}, 6, 0.004, 0, 4.0),
		telemetry.ShardFailed(0, 2, []int{3, 4}),
		telemetry.ShardMerge(0, 1, 6, 0.001, 4.0),
	}
}

func TestWriteTimeline(t *testing.T) {
	var sb strings.Builder
	if err := WriteTimeline(&sb, replayEvents()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"== round -1 ==",
		"reclustered     2 clusters in 0.002s",
		"== round 0 ==",
		"selected        [1 2]",
		"pick            client 1 from cluster 0 (fastest, latency 2.5s)",
		"aggregated      2 updates, round 4.0s, clock 4.0s",
		"shard report    shard 1: 2 reporters [1 2], 6 samples, 0.004s trip, local clock 4.0s",
		"shard failed    shard 2: discarded [3 4] (clients stay alive)",
		"shard merge     1 shards folded, 6 samples, 0.001s aggregation, clock 4.0s",
		"trace a round 0",
		"round",
		"dispatch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// The span tree nests dispatch under round.
	if strings.Index(out, "trace a") > strings.Index(out, "  dispatch") {
		t.Errorf("span tree ordering wrong:\n%s", out)
	}

	sb.Reset()
	if err := WriteTimeline(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no round events") {
		t.Errorf("empty timeline output %q", sb.String())
	}
}

func TestWriteSelectionTable(t *testing.T) {
	var sb strings.Builder
	if err := WriteSelectionTable(&sb, replayEvents()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want header + 2 clusters + policies:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "cluster") {
		t.Errorf("header %q", lines[0])
	}
	for _, want := range []string{"[0 1]", "[2]", "0.7000", "0.4500", "pick policies: fastest=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := WriteSelectionTable(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no selection events") {
		t.Errorf("empty table output %q", sb.String())
	}
}

// TestReplayFromJSONL checks the replay path haccs-trace uses: events
// written by the JSONL sink decode back and render identically to the
// in-memory originals.
func TestReplayFromJSONL(t *testing.T) {
	var buf strings.Builder
	sink := telemetry.NewJSONLSink(writerOnly{&buf})
	for _, e := range replayEvents() {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var direct, replayed strings.Builder
	if err := WriteTimeline(&direct, replayEvents()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimeline(&replayed, events); err != nil {
		t.Fatal(err)
	}
	if direct.String() != replayed.String() {
		t.Errorf("JSONL round trip changed the timeline:\n--- direct\n%s--- replayed\n%s", direct.String(), replayed.String())
	}
}

// writerOnly hides Reader methods so bufio targets a plain io.Writer.
type writerOnly struct{ w *strings.Builder }

func (w writerOnly) Write(p []byte) (int, error) { return w.w.Write(p) }
