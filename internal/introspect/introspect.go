// Package introspect is the selection-introspection layer: a live,
// structured view of why the scheduler is picking what it picks. A
// strategy that implements SelectionInspector publishes its current
// decision state — cluster assignments with their eq. 7 weight
// decomposition, a distance-matrix summary, the OPTICS reachability
// plot, and the most recent per-round pick rationale — and Handler
// serves it as JSON at /debug/selection on the telemetry HTTP mux.
//
// The package sits above telemetry and below the strategies: it defines
// only data types and an HTTP/replay surface, so internal/core can
// depend on it without internal/telemetry having to know strategies
// exist.
package introspect

import (
	"encoding/json"
	"net/http"
)

// SelectionInspector is implemented by strategies that can report
// their live decision state. Implementations must be safe to call
// concurrently with Select/Update (the HTTP handler races a training
// run by design).
type SelectionInspector interface {
	SelectionState() State
}

// State is one consistent snapshot of a strategy's decision state.
type State struct {
	// Strategy is the strategy's self-reported name.
	Strategy string `json:"strategy"`
	// Backend names the clustering pipeline behind the state ("dense"
	// or "sketch"); empty for strategies without a clustering stage.
	Backend string `json:"backend,omitempty"`
	// Sketch is the representative-index state when the sketch backend
	// is in force. On that backend Distance/Order/Reachability describe
	// the K representatives OPTICS actually clustered, not the N
	// clients.
	Sketch *SketchState `json:"sketch,omitempty"`
	// Round is the last round Select ran for (-1 before the first).
	Round int `json:"round"`
	// Clusters is the per-cluster scheduling state, indexed by cluster
	// ID.
	Clusters []ClusterState `json:"clusters"`
	// Distance summarizes the pairwise summary-distance matrix behind
	// the current clustering.
	Distance DistanceSummary `json:"distance"`
	// Order is the OPTICS visiting order behind the current clustering;
	// Reachability[i] is the reachability distance of Order[i], with
	// unreachable points (+Inf in the raw result, the starts of new
	// density-connected components) encoded as -1 so the state stays
	// JSON-representable.
	Order        []int     `json:"optics_order,omitempty"`
	Reachability []float64 `json:"reachability,omitempty"`
	// LastPicks is the pick rationale of the most recent Select call,
	// in selection order.
	LastPicks []Pick `json:"last_picks,omitempty"`
	// Async is the buffered asynchronous driver's runtime state; nil
	// on sync-mode runs (see HandlerWithAsync).
	Async *AsyncState `json:"async,omitempty"`
}

// SketchState is the live state of the sketch backend's representative
// layer: how many representatives cover the fleet, which cluster each
// representative resolved to, and (for fleets small enough to ship)
// every client's representative assignment.
type SketchState struct {
	// Dim is the sketch width (for P(X|y), the per-class block width of
	// the encoded vector).
	Dim int `json:"dim"`
	// AttachRadius is the sketch-space distance within which clients
	// attach to an existing representative.
	AttachRadius float64 `json:"attach_radius"`
	// Representatives is K, the representative count.
	Representatives int `json:"representatives"`
	// RepCounts[r] is how many clients are assigned to representative r.
	RepCounts []int `json:"rep_counts,omitempty"`
	// RepLabels[r] is representative r's cluster label.
	RepLabels []int `json:"rep_labels,omitempty"`
	// Assignments[c] is client c's representative; omitted for very
	// large fleets to keep the endpoint's payload bounded.
	Assignments []int `json:"assignments,omitempty"`
	// Reclusters counts full re-clusterings since Init (the first
	// clustering included).
	Reclusters int `json:"reclusters"`
}

// ClusterState is the live scheduling state of one cluster: its
// membership and the eq. 7 weight decomposition from the most recent
// Select call.
type ClusterState struct {
	ID      int   `json:"id"`
	Members []int `json:"members"`
	// Theta is the eq. 7 sampling weight θ = ρ·τ + (1−ρ)·ACLShare.
	Theta float64 `json:"theta"`
	// Tau is the latency term 1 − Latency_i/Latency_max.
	Tau float64 `json:"tau"`
	// ACL is the average last-known loss of the cluster's available
	// members; ACLShare its normalized share across clusters.
	ACL      float64 `json:"acl"`
	ACLShare float64 `json:"acl_share"`
	// Alive reports whether the cluster had any available member at the
	// last Select (dead clusters keep zero weights).
	Alive bool `json:"alive"`
}

// Pick records one intra-cluster device choice and its rationale.
type Pick struct {
	Round   int     `json:"round"`
	Cluster int     `json:"cluster"`
	Client  int     `json:"client"`
	Latency float64 `json:"latency"`
	// Theta is the sampled cluster's weight at pick time.
	Theta float64 `json:"theta"`
	// Reason names the intra-cluster policy that made the pick
	// (e.g. "fastest", "weighted").
	Reason string `json:"reason"`
}

// DistanceSummary compresses the pairwise distance matrix to the
// figures a human checks first (N is the client count; Min/Mean/Max
// range over the strict upper triangle).
type DistanceSummary struct {
	N    int     `json:"n"`
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// DistanceMatrix is the read surface SummarizeDistances needs;
// cluster.Matrix satisfies it structurally, keeping introspect free of
// a clustering dependency.
type DistanceMatrix interface {
	Len() int
	At(i, j int) float64
}

// SummarizeDistances builds a DistanceSummary from a symmetric pairwise
// distance matrix (only the strict upper triangle is read). An empty or
// single-point matrix yields the zero summary with N set.
func SummarizeDistances(m DistanceMatrix) DistanceSummary {
	s := DistanceSummary{N: m.Len()}
	cnt := 0
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			d := m.At(i, j)
			if cnt == 0 || d < s.Min {
				s.Min = d
			}
			if d > s.Max {
				s.Max = d
			}
			s.Mean += d
			cnt++
		}
	}
	if cnt > 0 {
		s.Mean /= float64(cnt)
	}
	return s
}

// EncodeReachability copies an OPTICS reachability plot for JSON
// transport, replacing +Inf (unreachable) with -1.
func EncodeReachability(reach []float64) []float64 {
	if reach == nil {
		return nil
	}
	out := make([]float64, len(reach))
	for i, r := range reach {
		if r > 1e308 || r != r { // +Inf or NaN cannot survive JSON
			out[i] = -1
			continue
		}
		out[i] = r
	}
	return out
}

// Handler serves the inspector's state as JSON — mount it at
// /debug/selection via telemetry.WithEndpoint.
func Handler(insp SelectionInspector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if insp == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(insp.SelectionState())
	})
}
