package introspect

import (
	"fmt"
	"io"
	"sort"

	"haccs/internal/telemetry"
)

// Replay turns a flight-recorder JSONL stream back into the two views
// haccs-trace prints: a per-round timeline (key round events plus the
// span tree) and a per-cluster selection summary table aggregated over
// the whole run.

// WriteTimeline renders the per-round timeline: for each round, the
// selection, straggler/failure and aggregation events in arrival order,
// followed by that round's span tree (when the run recorded spans).
func WriteTimeline(w io.Writer, events []telemetry.Event) error {
	rounds, order := groupByRound(events)
	if len(order) == 0 {
		_, err := fmt.Fprintln(w, "no round events recorded")
		return err
	}
	for _, r := range order {
		if _, err := fmt.Fprintf(w, "== round %d ==\n", r); err != nil {
			return err
		}
		var spans []telemetry.Event
		for _, e := range rounds[r] {
			switch e.Kind {
			case telemetry.KindSpan:
				spans = append(spans, e)
			case telemetry.KindUnavailable:
				fmt.Fprintf(w, "  unavailable     %v\n", e.Clients)
			case telemetry.KindSelection:
				fmt.Fprintf(w, "  selected        %v\n", e.Clients)
			case telemetry.KindClientPicked:
				fmt.Fprintf(w, "  pick            client %d from cluster %d (%s, latency %.1fs)\n",
					e.Client, e.Cluster, e.Reason, e.Latency)
			case telemetry.KindStragglerCut:
				fmt.Fprintf(w, "  straggler cut   %v at deadline %.1fs\n", e.Clients, e.VirtualSec)
			case telemetry.KindClientFailed:
				fmt.Fprintf(w, "  failed          %v\n", e.Clients)
			case telemetry.KindAggregated:
				fmt.Fprintf(w, "  aggregated      %d updates, round %.1fs, clock %.1fs\n",
					len(e.Clients), e.VirtualSec, e.Clock)
			case telemetry.KindUpdateBuffered:
				fmt.Fprintf(w, "  buffered        client %d (staleness %d) fill %d, clock %.1fs\n",
					e.Client, e.Staleness, e.Fill, e.Clock)
			case telemetry.KindUpdateStale:
				fmt.Fprintf(w, "  stale dropped   client %d (staleness %d), clock %.1fs\n",
					e.Client, e.Staleness, e.Clock)
			case telemetry.KindAggregateAsync:
				fmt.Fprintf(w, "  async flush     %d updates (max staleness %d), cycle %.1fs, clock %.1fs\n",
					len(e.Clients), e.Staleness, e.VirtualSec, e.Clock)
			case telemetry.KindEvaluated:
				fmt.Fprintf(w, "  evaluated       acc %.4f loss %.4f at clock %.1fs\n", e.Acc, e.Loss, e.Clock)
			case telemetry.KindShardReport:
				fmt.Fprintf(w, "  shard report    shard %d: %d reporters %v, %d samples, %.3fs trip, local clock %.1fs\n",
					e.Shard, len(e.Clients), e.Clients, e.NumSamples, e.WallSec, e.Clock)
			case telemetry.KindShardMerge:
				fmt.Fprintf(w, "  shard merge     %d shards folded, %d samples, %.3fs aggregation, clock %.1fs\n",
					e.Fill, e.NumSamples, e.WallSec, e.Clock)
			case telemetry.KindShardFailed:
				fmt.Fprintf(w, "  shard failed    shard %d: discarded %v (clients stay alive)\n", e.Shard, e.Clients)
			case telemetry.KindNetRound:
				fmt.Fprintf(w, "  net round       %.3fs wall\n", e.WallSec)
			case telemetry.KindReclustered:
				fmt.Fprintf(w, "  reclustered     %d clusters in %.3fs\n", e.Clusters, e.WallSec)
			}
		}
		if len(spans) > 0 {
			if err := telemetry.WriteSpanTree(w, spans); err != nil {
				return err
			}
		}
	}
	return nil
}

// groupByRound buckets events by round, preserving arrival order within
// a round, and returns the sorted round keys. Round -1 (Init-time
// reclustering) sorts first.
func groupByRound(events []telemetry.Event) (map[int][]telemetry.Event, []int) {
	rounds := map[int][]telemetry.Event{}
	for _, e := range events {
		rounds[e.Round] = append(rounds[e.Round], e)
	}
	order := make([]int, 0, len(rounds))
	for r := range rounds {
		order = append(order, r)
	}
	sort.Ints(order)
	return rounds, order
}

// clusterAgg accumulates one cluster's selection activity over a run.
type clusterAgg struct {
	sampled int
	picks   int
	members []int
	// last-seen weight decomposition (cluster_state, falling back to
	// cluster_sampled for pre-introspection recordings).
	theta, tau, acl, aclShare float64
}

// WriteSelectionTable renders the per-cluster selection summary: how
// often each cluster was sampled and picked from across the run, its
// membership, and its final eq. 7 weight decomposition.
func WriteSelectionTable(w io.Writer, events []telemetry.Event) error {
	aggs := map[int]*clusterAgg{}
	get := func(c int) *clusterAgg {
		a := aggs[c]
		if a == nil {
			a = &clusterAgg{}
			aggs[c] = a
		}
		return a
	}
	reasons := map[string]int{}
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindClusterSampled:
			a := get(e.Cluster)
			a.sampled++
			a.theta, a.tau, a.acl, a.aclShare = e.Theta, e.Tau, e.ACL, e.ACLShare
		case telemetry.KindClientPicked:
			get(e.Cluster).picks++
			if e.Reason != "" {
				reasons[e.Reason]++
			}
		case telemetry.KindClusterState:
			a := get(e.Cluster)
			a.members = e.Clients
			a.theta, a.tau, a.acl, a.aclShare = e.Theta, e.Tau, e.ACL, e.ACLShare
		}
	}
	if len(aggs) == 0 {
		_, err := fmt.Fprintln(w, "no selection events recorded")
		return err
	}
	ids := make([]int, 0, len(aggs))
	for c := range aggs {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	if _, err := fmt.Fprintf(w, "%-8s %-8s %-8s %-20s %8s %8s %8s %8s\n",
		"cluster", "sampled", "picks", "members", "theta", "tau", "acl", "share"); err != nil {
		return err
	}
	for _, c := range ids {
		a := aggs[c]
		members := "?"
		if a.members != nil {
			members = fmt.Sprintf("%v", a.members)
		}
		if _, err := fmt.Fprintf(w, "%-8d %-8d %-8d %-20s %8.4f %8.4f %8.4f %8.4f\n",
			c, a.sampled, a.picks, members, a.theta, a.tau, a.acl, a.aclShare); err != nil {
			return err
		}
	}
	if len(reasons) > 0 {
		names := make([]string, 0, len(reasons))
		for r := range reasons {
			names = append(names, r)
		}
		sort.Strings(names)
		if _, err := fmt.Fprintf(w, "pick policies:"); err != nil {
			return err
		}
		for _, r := range names {
			if _, err := fmt.Fprintf(w, " %s=%d", r, reasons[r]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
