package introspect

import (
	"encoding/json"
	"net/http"
)

// AsyncState is one consistent snapshot of the buffered asynchronous
// driver's runtime state, refreshed at the end of every scheduling
// cycle and served alongside the strategy's State at /debug/selection.
type AsyncState struct {
	// Version is the global model version — the number of buffered
	// aggregations folded in so far.
	Version int `json:"version"`
	// BufferK is the aggregation trigger; MaxStaleness the drop bound
	// (0 = unlimited); StalenessExponent the polynomial discount α.
	BufferK           int     `json:"buffer_k"`
	MaxStaleness      int     `json:"max_staleness"`
	StalenessExponent float64 `json:"staleness_exponent"`
	// InFlight lists the clients currently training, in virtual finish
	// order; BufferFill is the buffer occupancy (0 at cycle boundaries
	// — every cycle ends by flushing).
	InFlight   []int `json:"in_flight"`
	BufferFill int   `json:"buffer_fill"`
	// LastFlush is the size of the most recent aggregation (0 before
	// the first); Buffered and StaleDropped are cumulative update
	// counts; StalenessCounts is the cumulative staleness histogram
	// (index = staleness, last bucket overflow).
	LastFlush       int     `json:"last_flush"`
	Buffered        int     `json:"buffered_total"`
	StaleDropped    int     `json:"stale_dropped_total"`
	StalenessCounts []int   `json:"staleness_counts"`
	Clock           float64 `json:"clock"`
}

// AsyncInspector is implemented by the async round driver.
// Implementations must be safe to call concurrently with RunRound (the
// HTTP handler races a training run by design).
type AsyncInspector interface {
	AsyncState() AsyncState
}

// HandlerWithAsync serves the selection inspector's State with the
// async driver's runtime state attached under "async". Either argument
// may be nil: a nil inspector serves only the async state, a nil async
// driver degrades to Handler's output.
func HandlerWithAsync(insp SelectionInspector, async AsyncInspector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if insp == nil && async == nil {
			http.NotFound(w, req)
			return
		}
		var st State
		if insp != nil {
			st = insp.SelectionState()
		}
		if async != nil {
			as := async.AsyncState()
			st.Async = &as
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}
