module haccs

go 1.22
