GO ?= go

.PHONY: check vet fmt-check build test race bench-guard bench bench-json

## check: the tier-1 gate — vet, gofmt, build, and the full test suite under -race.
check: vet fmt-check build race

vet:
	$(GO) vet ./...

## fmt-check: fail if any file needs gofmt (same gate CI runs).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments suite is training-heavy; under -race it runs ~30
# minutes, past go test's default 10-minute per-package timeout.
race:
	$(GO) test -race -timeout 60m ./...

## bench-guard: compile and run every benchmark exactly once so a broken
## benchmark fails CI without paying full measurement time.
bench-guard:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench: full benchmark pass (slow; for local measurement only).
bench:
	$(GO) test -run '^$$' -bench . ./...

## bench-json: run the tracked benchmark suite and write
## BENCH_<rev>.json, comparing against the committed baseline. See
## README "Benchmarks" for how to read the report.
bench-json:
	$(GO) run ./cmd/haccs-bench -bench \
		-bench-out BENCH_$$(git rev-parse --short HEAD).json \
		-bench-baseline BENCH_baseline.json
