GO ?= go

.PHONY: check vet fmt-check build test race bench-guard bench bench-json resume-smoke fleet-smoke async-smoke scale-smoke shard-smoke scale-results

## check: the tier-1 gate — vet, gofmt, build, and the full test suite under -race.
check: vet fmt-check build race

vet:
	$(GO) vet ./...

## fmt-check: fail if any file needs gofmt (same gate CI runs).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments suite is training-heavy; under -race it runs ~30
# minutes, past go test's default 10-minute per-package timeout.
race:
	$(GO) test -race -timeout 60m ./...

## bench-guard: compile and run every benchmark exactly once so a broken
## benchmark fails CI without paying full measurement time.
bench-guard:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## resume-smoke: end-to-end crash-recovery check. Leg 1 runs 5 rounds
## with per-round checkpointing and exits (the "crash"); leg 2 resumes
## from the newest snapshot and finishes a 10-round budget; the
## reference runs all 10 rounds uninterrupted. The summary JSONs must
## be byte-identical — resume is bit-exact or this target fails.
SMOKE := $(or $(TMPDIR),/tmp)/haccs-resume-smoke
SMOKE_FLAGS := -strategy haccs-py -clients 12 -k 4 -size 8 -seed 7
resume-smoke:
	rm -rf $(SMOKE) && mkdir -p $(SMOKE)
	$(GO) build -o $(SMOKE)/haccs-sim ./cmd/haccs-sim
	$(SMOKE)/haccs-sim $(SMOKE_FLAGS) -rounds 5 \
		-checkpoint-dir $(SMOKE)/ckpt -checkpoint-retain 12
	$(SMOKE)/haccs-sim $(SMOKE_FLAGS) -rounds 10 -resume \
		-checkpoint-dir $(SMOKE)/ckpt -checkpoint-retain 12 \
		-json $(SMOKE)/resumed.json
	$(SMOKE)/haccs-sim $(SMOKE_FLAGS) -rounds 10 -json $(SMOKE)/reference.json
	diff $(SMOKE)/resumed.json $(SMOKE)/reference.json
	@echo "resume-smoke: resumed summary matches the uninterrupted reference"

## fleet-smoke: end-to-end fleet health check through the real binary.
## A short HACCS run with a tight deadline (2s virtual — tight enough
## that cuts must occur on the 12-client roster) and dropout, then the
## binary self-scrapes /debug/fleet and fails unless every round was
## recorded, Jain fairness is in (0,1], and at least one straggler cut
## landed in the registry.
FLEETSMOKE := $(or $(TMPDIR),/tmp)/haccs-fleet-smoke
fleet-smoke:
	rm -rf $(FLEETSMOKE) && mkdir -p $(FLEETSMOKE)
	$(GO) build -o $(FLEETSMOKE)/haccs-sim ./cmd/haccs-sim
	$(FLEETSMOKE)/haccs-sim -strategy haccs-py -clients 12 -k 4 -size 8 \
		-rounds 10 -deadline 2 -dropout 0.1 -seed 7 \
		-metrics-addr 127.0.0.1:0 -fleet-check

## async-smoke: end-to-end async-mode check through the real binary. A
## short FedBuff-style run with a staleness bound, then the binary
## self-scrapes /metrics (staleness histogram present) and
## /debug/selection (buffer state exposed) via -async-check; the second
## leg drives the async driver over the TCP transport.
ASYNCSMOKE := $(or $(TMPDIR),/tmp)/haccs-async-smoke
async-smoke:
	rm -rf $(ASYNCSMOKE) && mkdir -p $(ASYNCSMOKE)
	$(GO) build -o $(ASYNCSMOKE)/haccs-sim ./cmd/haccs-sim
	$(ASYNCSMOKE)/haccs-sim -mode async -strategy haccs-py -clients 12 -k 4 \
		-size 8 -rounds 12 -buffer-k 2 -max-staleness 6 -seed 7 \
		-metrics-addr 127.0.0.1:0 -async-check
	$(GO) test -run TestAsyncFederatedTrainingOverTCP -count=1 ./internal/experiments

## scale-smoke: small but complete scale-harness pass through the real
## haccs-load binary — a 200-client TCP fleet over every leg of the
## scenario matrix (sync with straggler deadline, async heavy-tail,
## reconnect storm, coordinator crash + checkpoint resume under load).
## haccs-load exits nonzero if the results file cannot be produced, any
## /metrics scrape fails its exposition lint, the storm does not fully
## reconnect, or the crash leg does not resume.
SCALESMOKE := $(or $(TMPDIR),/tmp)/haccs-scale-smoke
scale-smoke:
	rm -rf $(SCALESMOKE) && mkdir -p $(SCALESMOKE)
	$(GO) build -o $(SCALESMOKE)/haccs-load ./cmd/haccs-load
	$(SCALESMOKE)/haccs-load -clients 200 -k 16 -rounds 12 -scrape-every 3 \
		-out $(SCALESMOKE)/results -rev smoke
	test -s $(SCALESMOKE)/results/smoke.md
	@echo "scale-smoke: all legs passed; results at $(SCALESMOKE)/results/smoke.md"

## shard-smoke: end-to-end hierarchical-coordination check through the
## real haccs-root binary. Leg 1 runs 2 shard coordinators + root over
## loopback TCP (self-contained -local-clients mode) for 6 rounds with
## per-round root snapshots, then exits (the "crash"); leg 2 restarts
## the root process with -resume, the shards re-register, and the run
## continues from round 6 to 12 — cross-process root recovery through
## the real wire protocol. Leg 3 drives the sharded scenario-matrix leg
## via haccs-load (shard-wide storm + in-process root crash under
## load); haccs-load exits nonzero if the leg fails.
SHARDSMOKE := $(or $(TMPDIR),/tmp)/haccs-shard-smoke
SHARD_FLAGS := -shards 2 -local-clients 80 -k 8 -param-dim 64 -seed 7 \
	-checkpoint-dir $(SHARDSMOKE)/ckpt
shard-smoke:
	rm -rf $(SHARDSMOKE) && mkdir -p $(SHARDSMOKE)
	$(GO) build -o $(SHARDSMOKE)/haccs-root ./cmd/haccs-root
	$(GO) build -o $(SHARDSMOKE)/haccs-load ./cmd/haccs-load
	$(SHARDSMOKE)/haccs-root $(SHARD_FLAGS) -rounds 6
	$(SHARDSMOKE)/haccs-root $(SHARD_FLAGS) -rounds 12 -resume \
		| tee $(SHARDSMOKE)/resumed.log
	grep -q "resumed from checkpoint at round 6" $(SHARDSMOKE)/resumed.log
	$(SHARDSMOKE)/haccs-load -clients 120 -k 12 -rounds 12 -scrape-every 3 \
		-legs sharded -shards 2 -out $(SHARDSMOKE)/results -rev shard-smoke
	test -s $(SHARDSMOKE)/results/shard-smoke.md
	@echo "shard-smoke: root resume + sharded leg passed"

## scale-results: the committed-results run — a 2000-client fleet over
## the full matrix, writing tests/results/scale/<rev>.md for the
## current revision (commit the file, mirroring BENCH_<rev>.json).
scale-results:
	$(GO) run ./cmd/haccs-load -clients 2000 -k 64 -rounds 40 \
		-rev $$(git rev-parse --short HEAD)

## bench: full benchmark pass (slow; for local measurement only).
bench:
	$(GO) test -run '^$$' -bench . ./...

## bench-json: run the tracked benchmark suite and write
## BENCH_<rev>.json, comparing against the committed baseline. See
## README "Benchmarks" for how to read the report.
bench-json:
	$(GO) run ./cmd/haccs-bench -bench \
		-bench-out BENCH_$$(git rev-parse --short HEAD).json \
		-bench-baseline BENCH_baseline.json
