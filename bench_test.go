package haccs

// One benchmark per table and figure of the HACCS evaluation, plus
// microbenchmarks for the hot substrate paths. Each figure benchmark
// regenerates the corresponding result at Quick scale and reports the
// headline quantity as a custom metric, so `go test -bench=. -benchmem`
// doubles as the reproduction harness (use cmd/haccs-bench -scale=full
// for paper-scale client counts).

import (
	"math"
	"testing"

	"haccs/internal/benchrun"
	"haccs/internal/cluster"
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/experiments"
	"haccs/internal/fl"
	"haccs/internal/nn"
	"haccs/internal/simnet"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
	"haccs/internal/tensor"
)

// benchSeed keeps every benchmark deterministic.
const benchSeed = 1

// reportTTA attaches each strategy's time-to-accuracy as a custom
// benchmark metric (virtual seconds, not wall time).
func reportTTA(b *testing.B, r *experiments.CompareReport) {
	b.Helper()
	for _, run := range r.Runs {
		if run.TTAReached {
			b.ReportMetric(run.TTA, "vsec_tta_"+sanitize(run.Name))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFig1_Dropout regenerates the §III motivation experiment
// (Table I partition + Fig. 1a/1b): per-group accuracy under random vs
// whole-group permanent dropout.
func BenchmarkFig1_Dropout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig1(experiments.Quick, benchSeed)
		b.ReportMetric(r.MeanSurvivingGroupAcc(), "acc_surviving_groups")
		b.ReportMetric(r.MeanDroppedGroupAcc(), "acc_dropped_groups")
	}
}

// BenchmarkFig5a_CIFAR regenerates the CIFAR-10 scheduling-performance
// comparison (Fig. 5a): five strategies racing to 50% accuracy.
func BenchmarkFig5a_CIFAR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTTA(b, experiments.RunFig5("cifar", experiments.Quick, benchSeed))
	}
}

// BenchmarkFig5b_FEMNIST regenerates the FEMNIST comparison (Fig. 5b).
func BenchmarkFig5b_FEMNIST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTTA(b, experiments.RunFig5("femnist", experiments.Quick, benchSeed))
	}
}

// BenchmarkFig6_Dropout regenerates the 10% transient-dropout comparison
// on 20-class FEMNIST (Fig. 6).
func BenchmarkFig6_Dropout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTTA(b, experiments.RunFig6(experiments.Quick, benchSeed))
	}
}

// BenchmarkFig7_Skew regenerates the label-skew sensitivity grid
// (Fig. 7): IID / 5-label / high-skew × five strategies.
func BenchmarkFig7_Skew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig7(experiments.Quick, benchSeed)
		for li, level := range r.Levels {
			best := r.Reports[li].Best()
			if best.TTAReached {
				b.ReportMetric(best.TTA, "vsec_best_"+level.String())
			}
		}
	}
}

// BenchmarkFig8a_EpsilonClustering regenerates the privacy-vs-clustering
// sweep (Fig. 8a).
func BenchmarkFig8a_EpsilonClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig8a(experiments.Quick, benchSeed)
		if acc, ok := r.Accuracy(0.1, 1000); ok {
			b.ReportMetric(acc, "cluster_acc_eps0.1_m1000")
		}
		if acc, ok := r.Accuracy(0.001, 100); ok {
			b.ReportMetric(acc, "cluster_acc_eps0.001_m100")
		}
	}
}

// BenchmarkFig8b_EpsilonTTA regenerates the privacy-vs-TTA comparison
// (Fig. 8b): HACCS-P(y) under three privacy budgets vs random.
func BenchmarkFig8b_EpsilonTTA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTTA(b, experiments.RunFig8b(experiments.Quick, benchSeed))
	}
}

// BenchmarkFig9_Rho regenerates the ρ sensitivity sweep (Fig. 9).
func BenchmarkFig9_Rho(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTTA(b, experiments.RunFig9(experiments.Quick, benchSeed))
	}
}

// BenchmarkFig10_FeatureSkew regenerates the rotated-image feature-skew
// comparison (Fig. 10).
func BenchmarkFig10_FeatureSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTTA(b, experiments.RunFig10(experiments.Quick, benchSeed))
	}
}

// BenchmarkTable3_Inclusion regenerates the device-inclusion analysis at
// ρ=0.01 (Table III).
func BenchmarkTable3_Inclusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunBias(core.PY, experiments.Quick, benchSeed)
		b.ReportMetric(float64(r.Buckets[2]), "clusters_75pct_included")
		b.ReportMetric(float64(r.Buckets[0]), "clusters_under_50pct")
	}
}

// BenchmarkFig11_Bias regenerates the fastest-vs-slowest accuracy-gap
// analysis (Fig. 11) for both summary kinds.
func BenchmarkFig11_Bias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, kind := range []core.SummaryKind{core.PY, core.PXY} {
			r := experiments.RunBias(kind, experiments.Quick, benchSeed)
			b.ReportMetric(stats.Mean(r.AccGap), "mean_acc_gap_"+sanitize(kind.String()))
		}
	}
}

// BenchmarkTable2_LatencyModel characterizes the Table II heterogeneity
// model (input distribution, reported as the straggler ratio).
func BenchmarkTable2_LatencyModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ab := experiments.RunLatencyAblation(20000, benchSeed)
		b.ReportMetric(ab.StragglerRatio(), "straggler_ratio")
	}
}

// BenchmarkAblation_Clustering compares OPTICS auto-extraction against
// a DBSCAN radius grid on DP-noised summaries (DESIGN.md ablation).
func BenchmarkAblation_Clustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ab := experiments.RunClusteringAblation(experiments.Quick, 0.1, benchSeed)
		b.ReportMetric(ab.OPTICSAcc, "optics_recovery")
	}
}

// BenchmarkAblation_SummarySize verifies the Θ(c) vs Θ(c·p) summary
// footprint claim.
func BenchmarkAblation_SummarySize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ab := experiments.RunSummarySizeAblation(experiments.Quick, benchSeed)
		py, pxy := 0, 0
		for j := range ab.PYBytes {
			py += ab.PYBytes[j]
			pxy += ab.PXYBytes[j]
		}
		b.ReportMetric(float64(pxy)/float64(py), "pxy_over_py_bytes")
	}
}

// --- tracked substrate benchmarks (internal/benchrun suite) ---
//
// These delegate to the shared benchrun bodies so `go test -bench` and
// the BENCH_<rev>.json trajectory files measure identical workloads.

// BenchmarkConvForward measures the synthetic-CIFAR first-layer conv
// forward pass (the tracked ≥3×-vs-baseline target).
func BenchmarkConvForward(b *testing.B) { benchrun.ConvForward(b) }

// BenchmarkConvTrain measures the conv forward+backward pass.
func BenchmarkConvTrain(b *testing.B) { benchrun.ConvTrain(b) }

// BenchmarkTrainStep measures one full SGD training step on the
// synthetic-CIFAR LeNet; its allocs/op is the tracked allocation-free
// hot-path signal (target ≤ 2).
func BenchmarkTrainStep(b *testing.B) { benchrun.TrainStepLeNet(b) }

// BenchmarkTrainStepMLP measures one SGD step of the Quick-scale MLP.
func BenchmarkTrainStepMLP(b *testing.B) { benchrun.TrainStepMLP(b) }

// BenchmarkHellingerMatrix100 measures the 100-client pairwise distance
// matrix build (cluster.FromFunc).
func BenchmarkHellingerMatrix100(b *testing.B) { benchrun.HellingerMatrix100(b) }

// BenchmarkSketchCluster100k measures a full sketch-backend clustering
// of a 100k-client fleet — the tracked no-N×N scaling signal.
func BenchmarkSketchCluster100k(b *testing.B) { benchrun.SketchCluster100k(b) }

// BenchmarkSketchAssign measures the steady-state per-client sketch
// assignment kernel; its allocs/op is the tracked zero-allocation
// churn-path signal (target: exactly 0).
func BenchmarkSketchAssign(b *testing.B) { benchrun.SketchAssign(b) }

// BenchmarkRoundsDriverOverhead measures the shared round driver's pure
// orchestration cost (selection, fan-out, collection, FedAvg) with
// instant proxies standing in for local training.
func BenchmarkRoundsDriverOverhead(b *testing.B) { benchrun.RoundsDriverOverhead(b) }

// BenchmarkAsyncRoundThroughput measures the buffered async driver's
// orchestration throughput over a 256-client heavy-tail fleet; its
// updates/s metric is the tracked aggregated-update wall throughput.
func BenchmarkAsyncRoundThroughput(b *testing.B) { benchrun.AsyncRoundThroughput(b) }

// BenchmarkSpanNilTracer measures a full nested span lifecycle against a
// nil tracer; its allocs/op is the tracked zero-overhead signal
// (target: exactly 0).
func BenchmarkSpanNilTracer(b *testing.B) { benchrun.SpanNilTracer(b) }

// BenchmarkCheckpointEncode measures capturing and gob-encoding a
// LeNet-sized run snapshot — the per-checkpoint serialization cost.
func BenchmarkCheckpointEncode(b *testing.B) { benchrun.CheckpointEncode(b) }

// BenchmarkCheckpointDisabled measures the round loop's checkpoint
// hook with checkpointing off; its allocs/op is the tracked
// zero-overhead signal (target: exactly 0).
func BenchmarkCheckpointDisabled(b *testing.B) { benchrun.CheckpointDisabled(b) }

// BenchmarkFleetRecordDisabled measures the round loop's fleet health
// hook with the registry off (nil); its allocs/op is the tracked
// zero-overhead signal (target: exactly 0).
func BenchmarkFleetRecordDisabled(b *testing.B) { benchrun.FleetRecordDisabled(b) }

// BenchmarkRuntimeSampleDisabled measures the runtime self-metrics
// hook with the collector off (nil); its allocs/op is the tracked
// zero-overhead signal (target: exactly 0).
func BenchmarkRuntimeSampleDisabled(b *testing.B) { benchrun.RuntimeSampleDisabled(b) }

// --- substrate microbenchmarks ---

// BenchmarkMatMul measures the parallel GEMM kernel on a training-sized
// product.
func BenchmarkMatMul(b *testing.B) {
	rng := stats.NewRNG(benchSeed)
	x := tensor.New(128, 256)
	w := tensor.New(256, 128)
	x.RandNormal(0, 1, rng)
	w.RandNormal(0, 1, rng)
	dst := tensor.New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, w)
	}
	b.SetBytes(int64(8 * (x.Size() + w.Size() + dst.Size())))
}

// BenchmarkLocalTrainRound measures one client's full local update (the
// engine's inner loop).
func BenchmarkLocalTrainRound(b *testing.B) {
	spec := dataset.SyntheticCIFAR().Compact(8, 8)
	gen := dataset.NewGenerator(spec, benchSeed)
	rng := stats.NewRNG(2)
	ld := dataset.MajorityNoise(0, 0.75, []int{1, 2, 3}, dataset.DefaultMajorityFractions)
	train := gen.Generate(ld.Draw(200, rng), rng)
	client := &fl.Client{ID: 0, Data: dataset.ClientData{Train: train, Test: train}}
	arch := nn.Arch{Kind: "mlp", In: spec.FeatureDim(), Hidden: []int{32}, Classes: 10}
	model := arch.Build(stats.NewRNG(3))
	global := model.ParamsVector()
	cfg := fl.LocalTrainConfig{Epochs: 2, BatchSize: 32, LR: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.LocalTrain(model, global, cfg, stats.NewRNG(uint64(i)))
	}
}

// BenchmarkLeNetForward measures a LeNet inference batch at full-scale
// geometry.
func BenchmarkLeNetForward(b *testing.B) {
	rng := stats.NewRNG(benchSeed)
	net := nn.NewLeNet(1, 16, 16, 10, 4, 8, rng)
	x := tensor.New(32, 256)
	x.RandNormal(0, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

// BenchmarkHellingerDistanceMatrix measures the server's pairwise
// distance computation for a 50-client roster.
func BenchmarkHellingerDistanceMatrix(b *testing.B) {
	rng := stats.NewRNG(benchSeed)
	sums := make([]core.Summary, 50)
	for i := range sums {
		h := stats.NewLabelHistogram(10)
		for j := 0; j < 500; j++ {
			h.AddLabel(rng.Intn(10))
		}
		sums[i] = core.Summary{Kind: core.PY, Label: h}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DistanceMatrix(sums)
	}
}

// BenchmarkOPTICS measures clustering a 50-client distance matrix.
func BenchmarkOPTICS(b *testing.B) {
	m := cluster.FromFunc(50, func(i, j int) float64 {
		base := 0.1
		if i/5 != j/5 {
			base = 0.8
		}
		// Pure per-pair jitter (FromFunc may call dist concurrently, so
		// no shared RNG): splitmix64-style hash of the pair index.
		h := uint64(i*50+j) + 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
		return base + 0.05*float64(h>>11)/float64(1<<53)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cluster.OPTICS(m, 2, math.Inf(1))
		res.ExtractBestSilhouette(m, 0)
	}
}

// BenchmarkLaplaceMechanism measures summary noising.
func BenchmarkLaplaceMechanism(b *testing.B) {
	rng := stats.NewRNG(benchSeed)
	h := stats.NewLabelHistogram(62)
	for i := 0; i < 1000; i++ {
		h.AddLabel(rng.Intn(62))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.LaplaceMechanism(h, 0.1, rng)
	}
}

// BenchmarkSchedulerSelect measures one HACCS selection round on a
// 50-client roster.
func BenchmarkSchedulerSelect(b *testing.B) {
	rng := stats.NewRNG(benchSeed)
	var sums []core.Summary
	var infos []fl.ClientInfo
	for i := 0; i < 50; i++ {
		h := stats.NewLabelHistogram(10)
		major := i % 10
		for j := 0; j < 400; j++ {
			if rng.Float64() < 0.75 {
				h.AddLabel(major)
			} else {
				h.AddLabel(rng.Intn(10))
			}
		}
		sums = append(sums, core.Summary{Kind: core.PY, Label: h})
		infos = append(infos, fl.ClientInfo{ID: i, Latency: 1 + rng.Float64()*3, NumSamples: 400})
	}
	sched := core.NewScheduler(core.Config{Kind: core.PY, Rho: 0.75}, sums)
	sched.Init(infos, stats.NewRNG(2))
	available := make([]bool, 50)
	for i := range available {
		available[i] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Select(i, available, 10)
	}
}

// BenchmarkAblation_Distance compares the Hellinger choice against
// alternative bounded distribution distances (DESIGN.md ablation).
func BenchmarkAblation_Distance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ab := experiments.RunDistanceAblation(experiments.Quick, benchSeed)
		if accs := ab.Recovery["hellinger"]; len(accs) > 0 {
			b.ReportMetric(accs[0], "hellinger_recovery_clean")
		}
	}
}

// BenchmarkAblation_Gradient measures the §IV-A gradient-summary
// alternative: recovery, cross-round stability, and the wire-size
// asymmetry against P(y).
func BenchmarkAblation_Gradient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ab := experiments.RunGradientAblation(experiments.Quick, benchSeed)
		b.ReportMetric(ab.GradRecoveryRound0, "gradient_recovery")
		b.ReportMetric(ab.CrossRoundAgreement, "cross_round_rand_index")
		b.ReportMetric(float64(ab.GradientBytes)/float64(ab.PYBytes), "gradient_over_py_bytes")
	}
}

// telemetryBenchWorkload builds a small fixed roster + config for the
// engine-overhead benchmarks below.
func telemetryBenchWorkload(b *testing.B) ([]*fl.Client, fl.Config, func() fl.Strategy) {
	b.Helper()
	spec := dataset.SyntheticCIFAR().Compact(8, 8)
	planRNG := stats.NewRNG(stats.DeriveSeed(benchSeed, 14))
	plan := dataset.MajorityNoisePlan(12, 10, 60, 80, planRNG)
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(benchSeed, 10))
	dataRNG := stats.NewRNG(stats.DeriveSeed(benchSeed, 110))
	profRNG := stats.NewRNG(stats.DeriveSeed(benchSeed, 11))
	clientData := plan.Materialize(gen, 0.8, dataRNG)
	roster := make([]*fl.Client, len(clientData))
	trainSets := make([]*dataset.Dataset, len(clientData))
	for i, cd := range clientData {
		roster[i] = &fl.Client{ID: i, Data: cd, Profile: simnet.SampleProfile(profRNG)}
		trainSets[i] = cd.Train
	}
	cfg := fl.Config{
		Arch:                nn.Arch{Kind: "mlp", In: spec.FeatureDim(), Hidden: []int{16}, Classes: 10},
		Seed:                benchSeed,
		Local:               fl.LocalTrainConfig{Epochs: 1, BatchSize: 32, LR: 0.05},
		ClientsPerRound:     4,
		MaxRounds:           5,
		EvalEvery:           5,
		PerSampleComputeSec: 0.01,
	}
	strat := func() fl.Strategy {
		sums := core.BuildSummaries(trainSets, core.PY, 0, 0, stats.NewRNG(7))
		return core.NewScheduler(core.Config{Kind: core.PY, Rho: 0.75}, sums)
	}
	return roster, cfg, strat
}

// BenchmarkEngineRun_NilTelemetry measures a full 5-round HACCS run
// with the telemetry hooks compiled in but disabled (Tracer and
// Metrics nil). Comparing against BenchmarkEngineRun_Traced — and
// against the pre-instrumentation engine via git history — shows the
// nil fast path costs only dead branches.
func BenchmarkEngineRun_NilTelemetry(b *testing.B) {
	roster, cfg, strat := telemetryBenchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.NewEngine(cfg, roster, strat()).Run()
	}
}

// BenchmarkEngineRun_Traced is the same run with a live in-memory
// trace and metrics registry, bounding the cost of full
// instrumentation.
func BenchmarkEngineRun_Traced(b *testing.B) {
	roster, cfg, strat := telemetryBenchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sink := &telemetry.MemorySink{}
		reg := telemetry.NewRegistry()
		cfg.Tracer = sink
		cfg.Metrics = reg
		b.StartTimer()
		fl.NewEngine(cfg, roster, strat()).Run()
	}
}

// BenchmarkRegistryHotPath measures the per-event cost of the three
// collector types on the instrumented hot path.
func BenchmarkRegistryHotPath(b *testing.B) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i % 100))
	}
}
